(* recdb — command-line interface to the recursive-database library.

   Subcommands:
     recdb instances                         list the built-in hs instances
     recdb tree -i rado -d 3                 print a characteristic tree
     recdb classes -t 2,1 -r 2               count ≅ₗ classes (the 68!)
     recdb query -i triangles '{(x,y) | ...}'   evaluate an FO query
     recdb sentence -i rado 'forall x. ...'  evaluate an FO sentence
     recdb normalize -t 2 -r 2 '{(x,y)|...}' L⁻ normal form (Thm 2.1)
     recdb serve-batch FILE                  JSON-lines requests -> results
     recdb bench-engine                      cache + worker-pool benchmark
     recdb bench-parallel                    shared-memo parallel serving benchmark (E26)
     recdb crash-test                        kill workers mid-batch, verify containment
     recdb bench-resilience                  budget/deadline/fault benchmark (E25)

   Exit codes: 0 success, 1 runtime error (parse failure, unknown
   instance, ...), 124 command-line misuse (unknown subcommand or
   flag — Cmdliner's convention). *)

open Cmdliner

(* The instance registry lives in the engine library; build each
   instance at most once, lazily, and share it across uses. *)
let instances_table =
  lazy
    (List.map
       (fun name ->
         ( name,
           match Engine.build_instance name with
           | Some inst -> inst
           | None -> assert false ))
       (Engine.instance_names ()))

let lookup_instance name =
  match List.assoc_opt name (Lazy.force instances_table) with
  | Some inst -> Ok inst
  | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown instance %S; try `recdb instances'" name))

let instance_arg =
  let parse s = lookup_instance s in
  let print ppf inst = Format.fprintf ppf "%s" (Hs.Hsdb.name inst) in
  Arg.conv (parse, print)

let db_type_arg =
  let parse s =
    try
      Ok
        (String.split_on_char ',' s
        |> List.map String.trim
        |> List.map int_of_string
        |> Array.of_list)
    with _ -> Error (`Msg "expected a comma-separated arity list, e.g. 2,1")
  in
  let print ppf a =
    Format.fprintf ppf "%s"
      (String.concat "," (List.map string_of_int (Array.to_list a)))
  in
  Arg.conv (parse, print)

(* ------------------------------------------------------------------ *)

let cmd_instances =
  let doc = "List the built-in highly symmetric instances." in
  let run () =
    List.iter
      (fun (name, inst) ->
        Format.printf "%-10s type (%s)  |T^1| = %d, |T^2| = %d@." name
          (String.concat ","
             (List.map string_of_int (Array.to_list (Hs.Hsdb.db_type inst))))
          (Hs.Hsdb.class_count inst 1)
          (Hs.Hsdb.class_count inst 2))
      (Lazy.force instances_table)
  in
  Cmd.v (Cmd.info "instances" ~doc) Term.(const run $ const ())

let cmd_tree =
  let doc = "Print the first levels of an instance's characteristic tree." in
  let inst =
    Arg.(
      required
      & opt (some instance_arg) None
      & info [ "i"; "instance" ] ~docv:"NAME" ~doc:"Instance name.")
  in
  let depth =
    Arg.(value & opt int 3 & info [ "d"; "depth" ] ~docv:"N" ~doc:"Tree depth.")
  in
  let run inst depth = Format.printf "%a@." (Hs.Hsdb.pp_tree ~max_rank:depth) inst in
  Cmd.v (Cmd.info "tree" ~doc) Term.(const run $ inst $ depth)

let cmd_classes =
  let doc = "Count (and optionally list) the classes of ≅ₗ for a type/rank." in
  let db_type =
    Arg.(
      required
      & opt (some db_type_arg) None
      & info [ "t"; "type" ] ~docv:"ARITIES" ~doc:"Database type, e.g. 2,1.")
  in
  let rank =
    Arg.(value & opt int 2 & info [ "r"; "rank" ] ~docv:"N" ~doc:"Tuple rank.")
  in
  let formulas =
    Arg.(
      value & flag
      & info [ "formulas" ] ~doc:"Also print each class's describing formula.")
  in
  let run db_type rank formulas =
    Format.printf "|C^%d| for type (%s): %d@." rank
      (String.concat "," (List.map string_of_int (Array.to_list db_type)))
      (Localiso.Diagram.count ~db_type ~rank);
    if formulas then begin
      let vars = Core.Completeness.Diagram_vars.default ~rank in
      List.iteri
        (fun i d ->
          Format.printf "  C_%d: %s@." (i + 1)
            (Rlogic.Ast.formula_to_string
               (Core.Completeness.formula_of_diagram vars d)))
        (Localiso.Diagram.enumerate ~db_type ~rank ())
    end
  in
  Cmd.v (Cmd.info "classes" ~doc) Term.(const run $ db_type $ rank $ formulas)

let cmd_query =
  let doc =
    "Evaluate a first-order query on an hs instance (quantifiers range over \
     the characteristic tree)."
  in
  let inst =
    Arg.(
      required
      & opt (some instance_arg) None
      & info [ "i"; "instance" ] ~docv:"NAME" ~doc:"Instance name.")
  in
  let cutoff =
    Arg.(
      value & opt int 8
      & info [ "c"; "cutoff" ] ~docv:"N"
          ~doc:"Window bound for listing concrete members.")
  in
  let query =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"e.g. '{(x,y) | R1(x,y) && x != y}'.")
  in
  let run inst cutoff query =
    match Rlogic.Parser.query query with
    | exception Rlogic.Parser.Error msg ->
        Format.eprintf "parse error: %s@." msg;
        exit 1
    | Rlogic.Ast.Undefined -> Format.printf "undefined@."
    | Rlogic.Ast.Query { vars; _ } as q ->
        let rank = List.length vars in
        let reps = Hs.Fo_eval.eval_reps inst q ~rank in
        Format.printf "class representatives: %a@." Prelude.Tupleset.pp reps;
        Format.printf "members below %d: %a@." cutoff Prelude.Tupleset.pp
          (Hs.Fo_eval.eval_upto inst q ~cutoff)
  in
  Cmd.v (Cmd.info "query" ~doc) Term.(const run $ inst $ cutoff $ query)

let cmd_sentence =
  let doc = "Evaluate a first-order sentence on an hs instance." in
  let inst =
    Arg.(
      required
      & opt (some instance_arg) None
      & info [ "i"; "instance" ] ~docv:"NAME" ~doc:"Instance name.")
  in
  let sentence =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SENTENCE" ~doc:"e.g. 'forall x. exists y. R1(x,y)'.")
  in
  let run inst sentence =
    match Rlogic.Parser.formula sentence with
    | exception Rlogic.Parser.Error msg ->
        Format.eprintf "parse error: %s@." msg;
        exit 1
    | f ->
        if Rlogic.Ast.free_vars f <> [] then begin
          Format.eprintf "not a sentence: free variables %s@."
            (String.concat ", " (Rlogic.Ast.free_vars f));
          exit 1
        end
        else Format.printf "%b@." (Hs.Fo_eval.eval_sentence inst f)
  in
  Cmd.v (Cmd.info "sentence" ~doc) Term.(const run $ inst $ sentence)

let cmd_qlhs =
  let doc =
    "Run a QL_hs program (Theorem 3.1's language) on an hs instance and \
     print Y1."
  in
  let inst =
    Arg.(
      required
      & opt (some instance_arg) None
      & info [ "i"; "instance" ] ~docv:"NAME" ~doc:"Instance name.")
  in
  let fuel =
    Arg.(
      value & opt int 10_000
      & info [ "fuel" ] ~docv:"N" ~doc:"Step budget (programs may diverge).")
  in
  let cutoff =
    Arg.(
      value & opt int 8
      & info [ "c"; "cutoff" ] ~docv:"N"
          ~doc:"Window bound for listing concrete members.")
  in
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM"
          ~doc:
            "e.g. 'Y1 <- ~(Rel1 & E); Y2 <- Y1!'.  Operators: & = ∩, ~ = \
             complement, ^ = up, ! = down, %% = swap.")
  in
  let run inst fuel cutoff source =
    match Ql.Ql_parser.program source with
    | exception Ql.Ql_parser.Error msg ->
        Format.eprintf "parse error: %s@." msg;
        exit 1
    | p -> begin
        Format.printf "program:@.  %s@." (Ql.Ql_ast.program_to_string p);
        match Ql.Ql_hs.run inst ~fuel p with
        | Ql.Ql_interp.Halted store ->
            let v = store.(0) in
            Format.printf "Y1 (rank %d) representatives: %a@." v.Ql.Ql_hs.rank
              Prelude.Tupleset.pp v.Ql.Ql_hs.reps;
            Format.printf "members below %d: %a@." cutoff Prelude.Tupleset.pp
              (Ql.Ql_hs.denotation inst v ~cutoff)
        | Ql.Ql_interp.Timeout ->
            Format.printf "did not halt within %d steps (undefined?)@." fuel
        | Ql.Ql_interp.Ill_formed msg -> Format.printf "ill-formed: %s@." msg
      end
  in
  Cmd.v (Cmd.info "qlhs" ~doc) Term.(const run $ inst $ fuel $ cutoff $ source)

let cmd_normalize =
  let doc = "Put an L⁻ query in class normal form (Theorem 2.1)." in
  let db_type =
    Arg.(
      required
      & opt (some db_type_arg) None
      & info [ "t"; "type" ] ~docv:"ARITIES" ~doc:"Database type, e.g. 2.")
  in
  let query =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"A quantifier-free query.")
  in
  let run db_type query =
    match Rlogic.Parser.query query with
    | exception Rlogic.Parser.Error msg ->
        Format.eprintf "parse error: %s@." msg;
        exit 1
    | q ->
        let rank =
          match q with
          | Rlogic.Ast.Undefined -> 0
          | Rlogic.Ast.Query { vars; _ } -> List.length vars
        in
        let reg = Localiso.Classes.make ~db_type ~rank () in
        let lgq = Core.Completeness.lgq_of_query reg q in
        Format.printf "selected classes: %s@."
          (String.concat ", "
             (List.map string_of_int (Localiso.Lgq.selected_indices lgq)));
        Format.printf "normal form:@.%s@."
          (Rlogic.Ast.query_to_string (Core.Completeness.normalize reg q))
  in
  Cmd.v (Cmd.info "normalize" ~doc) Term.(const run $ db_type $ query)

(* ------------------------------------------------------------------ *)
(* The serving engine                                                  *)

let open_requests path =
  if path = "-" then stdin
  else
    try open_in path
    with Sys_error msg ->
      Format.eprintf "cannot read %s: %s@." path msg;
      exit 1

(* The file/socket-shared latency summary: the engine's own histogram
   is an Obs.Histogram sketch — the very same type the load generator
   aggregates into — so serve-batch and loadgen print quantiles from
   identical bucket math (1% relative error, not sorted-array
   percentiles). *)
let latency_summary ~served ~errors =
  let h = Metrics.histogram "engine.latency" in
  if Obs.Histogram.count h = 0 then
    Format.eprintf "served %d request%s (%d error%s)@." served
      (if served = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
  else
    Format.eprintf
      "served %d request%s (%d error%s); latency p50 %.3gms p95 %.3gms p99 \
       %.3gms@."
      served
      (if served = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      (1e3 *. Obs.Histogram.quantile h 0.50)
      (1e3 *. Obs.Histogram.quantile h 0.95)
      (1e3 *. Obs.Histogram.quantile h 0.99)

(* Tracing flags shared by serve-batch and serve: --trace samples every
   request, --trace-sample N one in N; absent, tracing is off and the
   hot path is the single-branch no-op. *)
let trace_flag =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Trace every request: span trees (queue wait, dispatch, parse, \
           retries) with exact Def. 3.9 ledger slices, dumped as JSON lines \
           to stderr at exit (serve-batch) or served at /traces (serve, \
           with --metrics-port).")

let trace_sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:"Trace one request in N (overrides --trace; 1 means all).")

let sampling_of_flags ~trace ~trace_sample =
  match (trace_sample, trace) with
  | Some n, _ when n < 1 ->
      Format.eprintf "trace-sample must be >= 1@.";
      exit 1
  | Some 1, _ -> Some Obs.Trace.All
  | Some n, _ -> Some (Obs.Trace.Every n)
  | None, true -> Some Obs.Trace.All
  | None, false -> None

(* Evaluation-mode flag shared by serve-batch and serve: compiled
   closures (the default) and the tree-walk interpreters serve
   byte-identical responses with identical ledgers (E31 asserts it) —
   off exists as the benchmark baseline and an escape hatch. *)
let compile_flag =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "compile" ] ~docv:"on|off"
        ~doc:
          "Closure-compile sentences, queries, QL programs and RQL plans \
           once per (instance, source text) before evaluation (default \
           on).  off keeps the tree-walk interpreters; answers and \
           per-request ledgers are byte-identical either way.")

(* Completeness flags shared by serve-batch, serve and rql: which
   stored relations are merely partial views (open), and which answer
   mode a request gets when it doesn't say. *)
let default_mode_flag =
  Arg.(
    value
    & opt
        (enum
           [
             ("exact", Request.M_exact);
             ("certain", Request.M_certain);
             ("possible", Request.M_possible);
             ( "approximate",
               Request.M_approximate { budget = Request.default_budget } );
           ])
        Request.M_exact
    & info [ "default-mode" ] ~docv:"MODE"
        ~doc:
          "Answer mode for requests that don't carry one: exact, certain, \
           possible or approximate.  A mode on the wire (or an RQL 'mode' \
           prefix) always wins.")

let open_world_flag =
  Arg.(
    value & flag
    & info [ "open-world" ]
        ~doc:
          "Apply the built-in demo completeness declarations (rado, mod3, \
           unary012 and colored get open relations); an explicit --decl \
           for the same instance overrides its demo entry.")

let decl_flags =
  Arg.(
    value
    & opt_all string []
    & info [ "decl" ] ~docv:"INST=SPEC"
        ~doc:
          "Declare an instance's per-relation completeness, e.g. \
           --decl 'mod3=R1 open known if R1(x1, x2)'.  Repeatable; \
           relations left undeclared are total.")

let decls_of_flags ~open_world ~decls =
  let parse_one spec =
    match String.index_opt spec '=' with
    | None ->
        Format.eprintf "--decl %S: expected INST=SPEC@." spec;
        exit 1
    | Some i -> (
        let inst = String.trim (String.sub spec 0 i) in
        let body = String.sub spec (i + 1) (String.length spec - i - 1) in
        match Incomplete.Decl.parse body with
        | Ok d -> (inst, d)
        | Error msg ->
            Format.eprintf "--decl %s: %s@." inst msg;
            exit 1)
  in
  let explicit = List.map parse_one decls in
  let demo =
    if open_world then
      List.filter_map
        (fun (name, spec) ->
          if List.mem_assoc name explicit then None
          else
            match Incomplete.Decl.parse spec with
            | Ok d -> Some (name, d)
            | Error msg ->
                Format.eprintf "demo declaration %s: %s@." name msg;
                exit 1)
        Incomplete.Decl.demo
    else []
  in
  explicit @ demo

(* Resilience flags shared by serve-batch: None everywhere means "no
   guard installed" (the pre-resilience hot path, byte for byte). *)
let engine_config_of_flags ~deadline_ms ~max_oracle_calls ~inject ~compile
    ?(decls = []) ?(default_mode = Request.M_exact) () =
  match (deadline_ms, max_oracle_calls, inject, compile, decls, default_mode)
  with
  | None, None, None, true, [], Request.M_exact -> None
  | _ ->
      Some
        {
          Engine.default_config with
          limits =
            {
              Resilience.max_oracle_calls;
              deadline_s = Option.map (fun ms -> ms /. 1000.0) deadline_ms;
            };
          faults =
            Option.map (fun seed -> Faulty_oracle.config ~seed ()) inject;
          compile;
          decls;
          default_mode;
        }

let cmd_serve_batch =
  let doc =
    "Serve a batch of requests: JSON-lines in, JSON-lines (result + stats) \
     out.  Each input line is an object like {\"id\":1,\"op\":\"sentence\",\
     \"instance\":\"triangles\",\"sentence\":\"exists x. exists y. R1(x, \
     y)\"}; see also ops query, classes, tree, program."
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Request file, or - for stdin.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains; 1 serves sequentially in-process.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Dump the process metrics table to stderr.")
  in
  let no_stats =
    Arg.(
      value & flag
      & info [ "no-stats" ]
          ~doc:
            "Omit per-request stats from the output (the deterministic part \
             only).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request wall-clock deadline; a request that runs over \
             returns a deadline_exceeded error instead of hanging the batch.")
  in
  let max_oracle_calls =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-oracle-calls" ] ~docv:"N"
          ~doc:
            "Per-request oracle-question budget (raw, T_B and \
             \xe2\x89\x85_B questions all count); overruns return \
             budget_exceeded.")
  in
  let inject =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject" ] ~docv:"SEED"
          ~doc:
            "Deterministically inject transient oracle outages (seeded; \
             absorbed by bounded retry, surviving ones become \
             oracle_unavailable errors).")
  in
  let run file jobs metrics no_stats deadline_ms max_oracle_calls inject
      compile default_mode open_world decls trace trace_sample =
    if jobs < 1 then begin
      Format.eprintf "jobs must be >= 1@.";
      exit 1
    end;
    let ic = open_requests file in
    let config =
      engine_config_of_flags ~deadline_ms ~max_oracle_calls ~inject ~compile
        ~decls:(decls_of_flags ~open_world ~decls)
        ~default_mode ()
    in
    let sampling = sampling_of_flags ~trace ~trace_sample in
    (* One engine (or pool) for the whole run, created up front so
       caches stay warm across chunks exactly as they did across one
       big batch. *)
    let serve, collect_traces, finish =
      if jobs = 1 then begin
        let trace =
          Option.map (fun sampling -> Obs.Trace.make ~sampling ()) sampling
        in
        let engine = Engine.create ?config ?trace () in
        ( Engine.handle_all engine,
          (fun () -> Engine.traces engine),
          fun () -> () )
      end
      else begin
        let pool =
          Pool.create ~domains:jobs ?engine_config:config ?tracing:sampling ()
        in
        ( Pool.run_batch pool,
          (fun () -> Pool.traces pool),
          fun () -> Pool.shutdown pool )
      end
    in
    let served = ref 0 in
    let errors = ref 0 in
    let print_response r =
      incr served;
      if Result.is_error r.Request.result then incr errors;
      print_endline
        (Json.to_string (Request.response_to_json ~stats:(not no_stats) r))
    in
    (* Stream the input instead of materializing it: decode up to
       [chunk_size] requests (Request.decode_line — the same per-line
       step the socket path runs), serve them, print in input order,
       repeat.  Memory is O(chunk), so request files larger than RAM
       serve fine; -j 1 streams strictly line by line. *)
    let chunk_size = if jobs = 1 then 1 else 256 in
    let rec fill acc n line_no =
      if n >= chunk_size then (List.rev acc, line_no, false)
      else
        match input_line ic with
        | line -> (
            let line_no = line_no + 1 in
            match
              Request.decode_line ~default_id:line_no
                ~on_unknown:(fun field ->
                  Format.eprintf
                    "warning: line %d: unknown request field %S ignored@."
                    line_no field)
                line
            with
            | `Empty -> fill acc n line_no
            | `Error resp -> fill (Either.Left resp :: acc) (n + 1) line_no
            | `Request req -> fill (Either.Right req :: acc) (n + 1) line_no)
        | exception End_of_file -> (List.rev acc, line_no, true)
    in
    let rec stream line_no =
      let decoded, line_no, eof = fill [] 0 line_no in
      let requests =
        List.filter_map
          (function Either.Right r -> Some r | Either.Left _ -> None)
          decoded
      in
      let responses = serve requests in
      (* Re-interleave served responses with decode failures, in input
         order. *)
      let rec emit decoded responses =
        match (decoded, responses) with
        | [], [] -> ()
        | Either.Left bad :: rest, responses ->
            print_response bad;
            emit rest responses
        | Either.Right _ :: rest, r :: responses ->
            print_response r;
            emit rest responses
        | _ -> assert false
      in
      emit decoded responses;
      if not eof then stream line_no
    in
    stream 0;
    let traces = collect_traces () in
    finish ();
    if file <> "-" then close_in ic;
    latency_summary ~served:!served ~errors:!errors;
    List.iter (fun tr -> prerr_endline (Obs.Trace.to_json_string tr)) traces;
    if metrics then prerr_string (Metrics.dump_text ())
  in
  Cmd.v
    (Cmd.info "serve-batch" ~doc)
    Term.(
      const run $ file $ jobs $ metrics $ no_stats $ deadline_ms
      $ max_oracle_calls $ inject $ compile_flag $ default_mode_flag
      $ open_world_flag $ decl_flags $ trace_flag $ trace_sample_arg)

(* ------------------------------------------------------------------ *)
(* The TCP front-end                                                   *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind or dial.")

let window_arg =
  Arg.(
    value & opt int 64
    & info [ "window" ] ~docv:"N"
        ~doc:
          "Admission window: global in-flight bound; requests arriving \
           beyond it are shed with a typed overloaded error instead of \
           queueing unboundedly.")

let per_conn_window_arg =
  Arg.(
    value & opt int 16
    & info [ "per-conn-window" ] ~docv:"N"
        ~doc:
          "Per-connection bound on responses owed; past it the server \
           stops reading that socket and lets TCP push back.")

let cmd_serve =
  let doc =
    "Serve the JSON-lines request ABI over TCP: one request per line in, \
     one response per line out, correlated by id (responses may return \
     out of order per connection).  Same semantics as serve-batch — plus \
     admission control (typed overloaded sheds), per-connection \
     backpressure, and graceful drain on SIGINT/SIGTERM."
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port; 0 picks an ephemeral port (printed to stderr).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: cores - 1, at least 1).")
  in
  let max_line =
    Arg.(
      value
      & opt int Frame.default_max_line
      & info [ "max-line" ] ~docv:"BYTES"
          ~doc:
            "Frame bound; longer lines are discarded and answered with a \
             typed parse error.")
  in
  let no_stats =
    Arg.(
      value & flag
      & info [ "no-stats" ]
          ~doc:"Omit per-request stats (the deterministic part only).")
  in
  let drain_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "drain-timeout" ] ~docv:"S"
          ~doc:
            "Seconds to wait for in-flight requests on shutdown before \
             aborting the stragglers.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let max_oracle_calls =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-oracle-calls" ] ~docv:"N"
          ~doc:"Per-request oracle-question budget.")
  in
  let inject =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject" ] ~docv:"SEED"
          ~doc:"Seeded transient oracle-outage injection.")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve the Prometheus text exposition on a second listener: \
             /metrics is every registered metric (engine counters, latency \
             histograms, admission and cache gauges), /traces the recent \
             sampled span trees as JSON lines.  0 picks an ephemeral port \
             (printed to stderr).")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Durable store directory: load any snapshot before serving \
             (warm start), journal admitted requests, write write-behind \
             snapshots, flush a final one on drain.")
  in
  let snapshot_interval =
    Arg.(
      value & opt float 30.0
      & info [ "snapshot-interval" ] ~docv:"S"
          ~doc:"Seconds between write-behind snapshots (with --store).")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound serving port (line 1) and metrics port (line \
             2, if any) to FILE once listening — how scripts find an \
             ephemeral --port 0.")
  in
  let run host port jobs window per_conn_window max_line no_stats
      drain_timeout deadline_ms max_oracle_calls inject compile default_mode
      open_world decls metrics_port store_dir snapshot_interval port_file
      trace trace_sample =
    if window < 1 || per_conn_window < 1 || max_line < 1 then begin
      Format.eprintf "window, per-conn-window and max-line must be >= 1@.";
      exit 1
    end;
    let config =
      engine_config_of_flags ~deadline_ms ~max_oracle_calls ~inject ~compile
        ~decls:(decls_of_flags ~open_world ~decls)
        ~default_mode ()
    in
    let tracing = sampling_of_flags ~trace ~trace_sample in
    let server =
      Server.start ~host ~port ?domains:jobs ~window ~per_conn_window
        ~max_line ~stats:(not no_stats) ?engine_config:config ?tracing
        ?metrics_port ?store_dir ~snapshot_interval_s:snapshot_interval ()
    in
    Format.eprintf
      "recdb: listening on %s:%d (admission window %d, per-connection \
       window %d, %d worker domain%s)@."
      host (Server.port server) window per_conn_window
      (Pool.size (Server.pool server))
      (if Pool.size (Server.pool server) = 1 then "" else "s");
    (match Server.metrics_port server with
    | Some mp -> Format.eprintf "recdb: metrics on %s:%d/metrics@." host mp
    | None -> ());
    (match store_dir with
    | Some dir -> Format.eprintf "recdb: durable store in %s@." dir
    | None -> ());
    (match port_file with
    | None -> ()
    | Some path ->
        (* temp + rename so a poller never reads a partial file *)
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Printf.fprintf oc "%d\n" (Server.port server);
        (match Server.metrics_port server with
        | Some mp -> Printf.fprintf oc "%d\n" mp
        | None -> ());
        close_out oc;
        Sys.rename tmp path);
    let stop = Atomic.make false in
    let on_signal _ = Atomic.set stop true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    while not (Atomic.get stop) do
      Unix.sleepf 0.05
    done;
    let adm = Server.admission server in
    Format.eprintf "recdb: draining (%d in flight)...@."
      (Admission.inflight adm);
    let outcome = Server.drain ~timeout_s:drain_timeout server in
    Format.eprintf
      "recdb: served %d connection(s), admitted %d request(s), shed %d@."
      (Server.connections server)
      (Admission.admitted adm) (Admission.shed adm);
    match outcome with
    | `Clean -> Format.eprintf "recdb: drained clean@."
    | `Forced n ->
        Format.eprintf "recdb: drain timed out; %d connection(s) aborted@." n;
        exit 1
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ host_arg $ port $ jobs $ window_arg $ per_conn_window_arg
      $ max_line $ no_stats $ drain_timeout $ deadline_ms $ max_oracle_calls
      $ inject $ compile_flag $ default_mode_flag $ open_world_flag
      $ decl_flags $ metrics_port $ store_dir $ snapshot_interval
      $ port_file $ trace_flag $ trace_sample_arg)

let cmd_loadgen =
  let doc =
    "Drive a running recdb server with concurrent connections and report \
     throughput and p50/p95/p99 latency.  Closed loop by default (each \
     connection keeps --pipeline requests outstanding); --rate switches \
     to open loop at a fixed per-connection send rate."
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Server port (required unless --endpoints is given).")
  in
  let connections =
    Arg.(
      value & opt int 4
      & info [ "c"; "connections" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let requests =
    Arg.(
      value & opt int 400
      & info [ "n"; "requests" ] ~docv:"N" ~doc:"Total requests to send.")
  in
  let pipeline =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"K"
          ~doc:"Closed-loop window per connection.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Open loop: requests/second per connection.")
  in
  let endpoints =
    Arg.(
      value
      & opt_all string []
      & info [ "endpoints" ] ~docv:"HOST:PORT"
          ~doc:
            "Dial these addresses round-robin per connection instead of \
             --host/--port — e.g. shard listeners directly, bypassing the \
             router.  Repeatable.")
  in
  let run host port connections requests pipeline rate endpoints =
    let endpoints =
      match endpoints with
      | [] -> None
      | specs ->
          Some
            (List.map
               (fun spec ->
                 match String.rindex_opt spec ':' with
                 | None ->
                     Format.eprintf "--endpoints %S: expected HOST:PORT@."
                       spec;
                     exit 1
                 | Some i -> (
                     let h = String.sub spec 0 i in
                     let p =
                       String.sub spec (i + 1) (String.length spec - i - 1)
                     in
                     match int_of_string_opt p with
                     | Some p -> (h, p)
                     | None ->
                         Format.eprintf "--endpoints %S: bad port %S@." spec
                           p;
                         exit 1))
               specs)
    in
    let port =
      match (port, endpoints) with
      | Some p, _ -> p
      | None, Some _ -> 0 (* every connection dials an endpoint *)
      | None, None ->
          Format.eprintf "loadgen: --port or --endpoints is required@.";
          exit 1
    in
    let report =
      Loadgen.run ~host ~port ~connections ~requests ~pipeline ?rate
        ?endpoints ()
    in
    Format.printf "%a@." Loadgen.pp_report report;
    if report.Loadgen.lost > 0 then exit 1
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ host_arg $ port $ connections $ requests $ pipeline $ rate
      $ endpoints)

let cmd_bench_server =
  let doc =
    "Benchmark the TCP front-end (E27): byte-identity of socket-served \
     vs. batch-served responses, loopback throughput and latency \
     quantiles per connection count, and the shed rate at 2x the \
     admission window (typed overloaded errors; the in-flight high-water \
     mark never exceeds the window; a shed asks zero oracle questions).  \
     Exits 1 on any violation."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let requests =
    Arg.(
      value & opt int 400
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per measurement.")
  in
  let conns =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "connections" ] ~docv:"N,..."
          ~doc:"Connection counts for the throughput rows.")
  in
  let run out requests conns_list =
    let result = Net_bench.run ?out ~requests ~conns_list () in
    match Net_bench.violations result with
    | [] -> Format.printf "server bench: OK@."
    | vs ->
        List.iter (Format.eprintf "violation: %s@.") vs;
        exit 1
  in
  Cmd.v (Cmd.info "bench-server" ~doc)
    Term.(const run $ out $ requests $ conns)

let cmd_server_smoke =
  let doc =
    "CI smoke: fork a real recdb serve child on an ephemeral loopback port \
     (--port 0, discovered through --port-file), run the load generator \
     against it, and verify every request is answered with zero errors, \
     zero sheds, a clean SIGTERM drain, and exit status 0.  Exits 1 \
     otherwise."
  in
  let requests =
    Arg.(
      value & opt int 300
      & info [ "requests" ] ~docv:"N" ~doc:"Total requests.")
  in
  let connections =
    Arg.(
      value & opt int 4
      & info [ "c"; "connections" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let run requests connections =
    let exe = Sys.executable_name in
    let dir = "_server_smoke" in
    Proc.rm_rf dir;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let port_file = Filename.concat dir "server.port" in
    let log = Filename.concat dir "server.log" in
    let pid =
      Proc.spawn ~log
        [|
          exe; "serve"; "--port"; "0"; "--port-file"; port_file;
          "--window"; "256"; "--per-conn-window"; "64";
        |]
    in
    let port =
      match Proc.wait_port_file port_file with
      | Ok (port, _) -> port
      | Error e ->
          Format.eprintf "server-smoke: %s (child log: %s)@." e log;
          Proc.kill_and_reap pid Sys.sigkill;
          exit 1
    in
    let report = Loadgen.run ~port ~connections ~requests ~pipeline:4 () in
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let status = snd (Unix.waitpid [] pid) in
    Format.printf "server-smoke: %a@." Loadgen.pp_report report;
    let failures =
      (if report.Loadgen.answered <> report.Loadgen.sent then
         [
           Printf.sprintf "%d answered of %d sent" report.Loadgen.answered
             report.Loadgen.sent;
         ]
       else [])
      @ (if report.Loadgen.errors > 0 then
           [ Printf.sprintf "%d error responses" report.Loadgen.errors ]
         else [])
      @ (if report.Loadgen.shed > 0 then
           [ Printf.sprintf "%d sheds under nominal load" report.Loadgen.shed ]
         else [])
      @ (if report.Loadgen.lost > 0 then
           [ Printf.sprintf "%d requests lost" report.Loadgen.lost ]
         else [])
      @
      match status with
      | Unix.WEXITED 0 -> []
      | _ -> [ "child did not drain cleanly on SIGTERM (nonzero exit)" ]
    in
    match failures with
    | [] ->
        Format.printf "server-smoke: clean shutdown, zero errors@.";
        Proc.rm_rf dir
    | fs ->
        List.iter (Format.eprintf "server-smoke failure: %s@.") fs;
        Format.eprintf "server-smoke: child log kept at %s@." log;
        exit 1
  in
  Cmd.v (Cmd.info "server-smoke" ~doc) Term.(const run $ requests $ connections)

let cmd_crash_test =
  let doc =
    "Chaos-test the worker pool: serve a mixed batch while deliberately \
     killing the worker domain on every Nth request, then verify \
     containment — one response per request, crashed requests carry a \
     typed worker_crash error, and every other response is byte-identical \
     to a clean sequential run.  Exits 1 on any violation."
  in
  let requests =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Batch size.")
  in
  let jobs =
    Arg.(
      value & opt int 3
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let every =
    Arg.(
      value & opt int 25
      & info [ "every" ] ~docv:"K"
          ~doc:"Kill the serving worker on requests with id divisible by K.")
  in
  let run requests jobs every =
    if requests < 1 || jobs < 1 || every < 1 then begin
      Format.eprintf "requests, jobs and every must all be >= 1@.";
      exit 1
    end;
    let batch = Engine_bench.build_batch requests in
    let reference = Engine.handle_all (Engine.create ()) batch in
    let pool =
      Pool.create ~domains:jobs
        ~crash_on:(fun r -> r.Request.id mod every = 0)
        ()
    in
    let responses = Pool.run_batch pool batch in
    let deaths = Pool.worker_deaths pool in
    Pool.shutdown pool;
    let violations = ref [] in
    let violation fmt =
      Format.kasprintf (fun s -> violations := s :: !violations) fmt
    in
    if List.length responses <> requests then
      violation "%d responses for %d requests" (List.length responses)
        requests
    else
      List.iter2
        (fun (r : Request.response) (ref_r : Request.response) ->
          if r.id <> ref_r.id then
            violation "response id %d out of order (expected %d)" r.id
              ref_r.id
          else if r.id mod every = 0 then (
            match r.result with
            | Error (Request.Worker_crash _) -> ()
            | _ ->
                violation "request %d should have died with worker_crash"
                  r.id)
          else
            let s r =
              Json.to_string (Request.response_to_json ~stats:false r)
            in
            if not (String.equal (s r) (s ref_r)) then
              violation "request %d differs from the sequential run" r.id)
        responses reference;
    let crashed =
      List.length
        (List.filter
           (fun (r : Request.response) ->
             match r.result with
             | Error (Request.Worker_crash _) -> true
             | _ -> false)
           responses)
    in
    Format.printf
      "crash-test: %d requests on %d workers, crashing every %dth id: %d \
       worker deaths, %d crashed responses, %d clean@."
      requests jobs every deaths crashed (requests - crashed);
    match !violations with
    | [] -> Format.printf "containment holds: all clean responses identical \
                           to a sequential run@."
    | vs ->
        List.iter (Format.eprintf "violation: %s@.") (List.rev vs);
        exit 1
  in
  Cmd.v (Cmd.info "crash-test" ~doc) Term.(const run $ requests $ jobs $ every)

let cmd_bench_resilience =
  let doc =
    "Benchmark the resilience layer (E25): budget-guard overhead on \
     repeated evaluation, deadline/budget trips on a diverging request, \
     and retry determinism under injected faults."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let trials =
    Arg.(
      value & opt int 3
      & info [ "trials" ] ~docv:"N" ~doc:"Timing trials (best is kept).")
  in
  let requests =
    Arg.(
      value & opt int 2000
      & info [ "requests" ] ~docv:"N"
          ~doc:"Batch size for the overhead measurement.")
  in
  let fault_requests =
    Arg.(
      value & opt int 200
      & info [ "fault-requests" ] ~docv:"N"
          ~doc:"Batch size for the fault-injection run.")
  in
  let run out trials requests fault_requests =
    ignore
      (Engine_bench.run_resilience ?out ~trials ~requests ~fault_requests ())
  in
  Cmd.v
    (Cmd.info "bench-resilience" ~doc)
    Term.(const run $ out $ trials $ requests $ fault_requests)

let cmd_bench_parallel =
  let doc =
    "Benchmark parallel serving with the shared memo layer (E26): \
     cold/warm batch throughput per domain count (counts above \
     Domain.recommended_domain_count are reported as skipped), \
     byte-identity of every pool response to the sequential reference, \
     and the cross-worker question bound (pool-wide genuine oracle \
     questions never exceed the sequential count).  Exits 1 if any \
     measured run is not byte-identical, exceeds the question bound, or \
     loses a worker."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let requests =
    Arg.(
      value & opt int 600
      & info [ "requests" ] ~docv:"N" ~doc:"Batch size (default 600).")
  in
  let domains =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "domains" ] ~docv:"N,..."
          ~doc:"Domain counts to measure (default 1,2,4,8).")
  in
  let run out requests domains_list =
    let p = Engine_bench.run_parallel ?out ~requests ~domains_list () in
    let violations =
      List.concat_map
        (fun (r : Engine_bench.parallel_run) ->
          if r.Engine_bench.p_skipped then []
          else
            (if r.Engine_bench.p_identical then []
             else
               [
                 Printf.sprintf "%d domains: results differ from sequential"
                   r.Engine_bench.p_domains;
               ])
            @ (if r.Engine_bench.questions_ok then []
               else
                 [
                   Printf.sprintf
                     "%d domains: %d questions > sequential %d"
                     r.Engine_bench.p_domains r.Engine_bench.p_questions
                     p.Engine_bench.seq_questions;
                 ])
            @
            if r.Engine_bench.p_deaths = 0 then []
            else
              [
                Printf.sprintf "%d domains: %d worker death(s)"
                  r.Engine_bench.p_domains r.Engine_bench.p_deaths;
              ])
        p.Engine_bench.p_runs
    in
    match violations with
    | [] -> Format.printf "parallel serving: OK@."
    | vs ->
        List.iter (Format.eprintf "violation: %s@.") vs;
        exit 1
  in
  Cmd.v
    (Cmd.info "bench-parallel" ~doc)
    Term.(const run $ out $ requests $ domains)

let cmd_bench_obs =
  let doc =
    "Benchmark the observability subsystem (E28): tracing overhead on the \
     batch workload with sampling off / 1-in-64 / full (off and sampled \
     must stay under 5%), byte-identity of every response in every mode \
     (observation must not change a served byte), ledger exactness (every \
     traced request's span slices sum to its response's question count), \
     and a worked span tree for a budget-tripped request.  Exits 1 on any \
     violation."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let requests =
    Arg.(
      value & opt int 2000
      & info [ "requests" ] ~docv:"N" ~doc:"Batch size per trial.")
  in
  let trials =
    Arg.(
      value & opt int 3
      & info [ "trials" ] ~docv:"N" ~doc:"Timing trials (best is kept).")
  in
  let run out requests trials =
    let r = Engine_bench.run_obs ?out ~requests ~trials () in
    match r.Engine_bench.ob_violations with
    | [] -> Format.printf "obs bench: OK@."
    | vs ->
        List.iter (Format.eprintf "violation: %s@.") vs;
        exit 1
  in
  Cmd.v (Cmd.info "bench-obs" ~doc) Term.(const run $ out $ requests $ trials)

let cmd_stats =
  let doc =
    "One-shot scrape of a running server's metrics listener: fetch a path \
     (default /metrics, the Prometheus text exposition; /traces for recent \
     span trees) and print the body.  The server must be running with \
     --metrics-port.  With --ledger, -p is the $(i,serving) port instead: \
     send the stats wire op and print the node's cumulative Def. 3.9 \
     question ledger — against a router, the merged cluster ledger plus \
     the per-shard breakdown."
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:
            "The server's metrics port (or, with --ledger, its serving \
             port).")
  in
  let path =
    Arg.(
      value & opt string "/metrics"
      & info [ "path" ] ~docv:"PATH" ~doc:"Route to fetch.")
  in
  let ledger =
    Arg.(
      value & flag
      & info [ "ledger" ]
          ~doc:
            "Ask the serving port for its question ledger over the wire \
             ABI instead of scraping the metrics listener.")
  in
  let print_ledger ~indent (l : Request.ledger) =
    Format.printf
      "%s%-24s %8d questions (raw %d, t_b %d, equiv %d)  cache hits %d%s%s@."
      indent l.Request.l_node l.Request.l_questions l.Request.l_raw
      l.Request.l_tb l.Request.l_equiv l.Request.l_cache_hits
      (if l.Request.l_served > 0 then
         Printf.sprintf "  served %d" l.Request.l_served
       else "")
      (if l.Request.l_hedges_fired > 0 || l.Request.l_sheds > 0 then
         Printf.sprintf "  hedges %d (wins %d)  sheds %d"
           l.Request.l_hedges_fired l.Request.l_hedge_wins l.Request.l_sheds
       else "")
  in
  let run_ledger host port =
    let fail fmt =
      Format.kasprintf
        (fun s ->
          Format.eprintf "stats: %s@." s;
          exit 1)
        fmt
    in
    match Proc.send_and_collect ~host ~port [ {|{"id":0,"op":"stats"}|} ] with
    | Error e -> fail "%s" e
    | Ok [] -> fail "no response from %s:%d" host port
    | Ok (line :: _) -> (
        match Json.parse line with
        | Error e -> fail "unparsable response: %s" e
        | Ok j -> (
            match Json.member "ok" j with
            | None -> fail "error response: %s" line
            | Some ok -> (
                let cluster =
                  Option.bind (Json.member "cluster" ok) Request.ledger_of_json
                in
                let shards =
                  match Json.member "shards" ok with
                  | Some (Json.List ls) ->
                      List.filter_map Request.ledger_of_json ls
                  | _ -> []
                in
                match cluster with
                | None -> fail "response carried no ledger: %s" line
                | Some l ->
                    print_ledger ~indent:"" l;
                    List.iter (print_ledger ~indent:"  ") shards)))
  in
  let run host port path ledger =
    if ledger then run_ledger host port
    else
      match Expo_server.get ~host ~port ~path () with
      | Ok body -> print_string body
      | Error reason ->
          Format.eprintf "stats: %s@." reason;
          exit 1
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ host_arg $ port $ path $ ledger)

(* The exposition format checks obs-smoke runs against a scrape body:
   every family the serving stack is known to register must be present,
   and every histogram's cumulative le-ladder must be monotone. *)
let check_exposition body =
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
  let lines = String.split_on_char '\n' body in
  let required =
    [
      "engine_requests_total";
      "engine_plans_compiled_total";
      "engine_compile_ns_total";
      "engine_latency_seconds";
      "server_frames_dropped_oversized_total";
      "server_frames_parse_error_total";
      "server_scrapes_total";
      "admission_window";
      "admission_admitted_total";
      "pool_oracle_questions";
      "pool_cache_hits";
    ]
  in
  List.iter
    (fun name ->
      let present =
        List.exists
          (fun l ->
            String.length l > String.length name
            && String.sub l 0 (String.length name) = name
            && (l.[String.length name] = ' ' || l.[String.length name] = '_'
               || l.[String.length name] = '{'))
          lines
      in
      if not present then fail "missing metric family %s" name)
    required;
  (* Bucket monotonicity: within one histogram, counts never decrease
     down the le ladder, and the +Inf bucket equals _count. *)
  let bucket_of l =
    match String.index_opt l '{' with
    | Some i when String.length l > 7 && String.sub l 0 1 <> "#" -> (
        let name = String.sub l 0 i in
        match String.rindex_opt l ' ' with
        | Some sp -> (
            try
              Some (name, int_of_string (String.sub l (sp + 1)
                                            (String.length l - sp - 1)))
            with _ -> None)
        | None -> None)
    | _ -> None
  in
  let last : (string * int) option ref = ref None in
  List.iter
    (fun l ->
      match bucket_of l with
      | Some (name, v) -> (
          (match !last with
          | Some (prev_name, prev_v) when prev_name = name && v < prev_v ->
              fail "histogram %s: bucket count %d < previous %d" name v prev_v
          | _ -> ());
          last := Some (name, v))
      | None -> last := None)
    lines;
  List.rev !failures

let cmd_obs_smoke =
  let doc =
    "CI smoke for the observability subsystem: start a server with tracing \
     sampled and a metrics listener on an ephemeral port, drive it with the \
     load generator, then scrape /metrics (asserting the exposition is \
     well-formed: required families present, histogram buckets monotone) \
     and /traces (asserting every line parses as JSON and carries a span \
     tree).  Exits 1 on any failure."
  in
  let requests =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Total requests.")
  in
  let run requests =
    let server =
      Server.start ~window:256 ~per_conn_window:64
        ~tracing:(Obs.Trace.Every 4) ~metrics_port:0 ()
    in
    let mport =
      match Server.metrics_port server with
      | Some p -> p
      | None ->
          Format.eprintf "obs-smoke: no metrics listener came up@.";
          exit 1
    in
    let report =
      Loadgen.run ~port:(Server.port server) ~connections:4 ~requests
        ~pipeline:4 ()
    in
    let metrics_body = Expo_server.get ~port:mport ~path:"/metrics" () in
    let traces_body = Expo_server.get ~port:mport ~path:"/traces" () in
    let missing_route = Expo_server.get ~port:mport ~path:"/nonsense" () in
    let outcome = Server.drain ~timeout_s:30.0 server in
    let failures =
      (if report.Loadgen.answered <> report.Loadgen.sent then
         [
           Printf.sprintf "%d answered of %d sent" report.Loadgen.answered
             report.Loadgen.sent;
         ]
       else [])
      @ (if report.Loadgen.errors > 0 then
           [ Printf.sprintf "%d error responses" report.Loadgen.errors ]
         else [])
      @ (match metrics_body with
        | Error reason -> [ Printf.sprintf "/metrics scrape failed: %s" reason ]
        | Ok body ->
            List.map (Printf.sprintf "/metrics: %s") (check_exposition body))
      @ (match traces_body with
        | Error reason -> [ Printf.sprintf "/traces scrape failed: %s" reason ]
        | Ok body ->
            let lines =
              List.filter
                (fun l -> String.trim l <> "")
                (String.split_on_char '\n' body)
            in
            (if lines = [] then [ "/traces: no sampled traces collected" ]
             else [])
            @ List.concat_map
                (fun l ->
                  match Json.parse l with
                  | Ok (Json.Obj kvs)
                    when List.mem_assoc "root" kvs
                         && List.mem_assoc "questions" kvs -> []
                  | Ok _ -> [ Printf.sprintf "/traces: not a span tree: %s" l ]
                  | Error e ->
                      [ Printf.sprintf "/traces: unparseable line (%s)" e ])
                lines)
      @ (match missing_route with
        | Error _ -> []
        | Ok _ -> [ "/nonsense answered 200; expected 404" ])
      @
      match outcome with
      | `Clean -> []
      | `Forced n -> [ Printf.sprintf "drain aborted %d connection(s)" n ]
    in
    match failures with
    | [] ->
        Format.printf
          "obs-smoke: %d requests, exposition well-formed, traces parse, \
           clean drain@."
          report.Loadgen.answered
    | fs ->
        List.iter (Format.eprintf "obs-smoke failure: %s@.") fs;
        exit 1
  in
  Cmd.v (Cmd.info "obs-smoke" ~doc) Term.(const run $ requests)

let cmd_bench_engine =
  let doc =
    "Benchmark the engine: oracle-call savings from the LRU cache on \
     repeated evaluation, and batch throughput on 1/2/4 worker domains."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let repeats =
    Arg.(
      value & opt int 25
      & info [ "repeats" ] ~docv:"N" ~doc:"Cache-workload repetitions.")
  in
  let requests =
    Arg.(
      value & opt int 1000
      & info [ "requests" ] ~docv:"N" ~doc:"Batch size for the pool runs.")
  in
  let run out repeats requests =
    Format.printf "engine benchmark:@.";
    Engine_bench.run ?out ~repeats ~requests ()
  in
  Cmd.v
    (Cmd.info "bench-engine" ~doc)
    Term.(const run $ out $ repeats $ requests)

let cmd_rql =
  let doc =
    "Evaluate an RQL query (let/fix bindings over FO formulas, see \
     README) on an hs instance; omit QUERY for a read-eval-print loop."
  in
  let inst =
    Arg.(
      value & opt string "paths3"
      & info [ "i"; "instance" ] ~docv:"NAME" ~doc:"Instance name.")
  in
  let cutoff =
    Arg.(
      value & opt int 4
      & info [ "c"; "cutoff" ] ~docv:"N"
          ~doc:"Window bound for listing concrete members.")
  in
  let naive =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Disable the cost-based planner: literal compilation, full \
             fixpoint rounds, scan-based membership.  Same answers, more \
             oracle questions.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ] ~doc:"Print the compiled plan before evaluating.")
  in
  let query =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "e.g. 'fix p(x,y) = R1(x,y) || exists z. (R1(x,z) && p(z,y)); \
             query {(x,y) | p(x,y)}'.  Omit to enter a REPL (one query \
             per line, blank line or EOF to quit).")
  in
  let run inst cutoff naive explain open_world decls query =
    if not (List.mem inst (Engine.instance_names ())) then begin
      Format.eprintf "unknown instance %S; try `recdb instances'@." inst;
      exit 1
    end;
    let planner = if naive then Request.Plan_naive else Request.Plan_cost in
    let mode = if naive then Rql.Rql_plan.Naive else Rql.Rql_plan.Planned in
    let config =
      engine_config_of_flags ~deadline_ms:None ~max_oracle_calls:None
        ~inject:None ~compile:true
        ~decls:(decls_of_flags ~open_world ~decls)
        ()
    in
    (* One engine for the whole run: in the REPL, later queries reuse
       earlier plans and materialized definitions. *)
    let engine = Engine.create ?config () in
    let next_id = ref 0 in
    let pp_tuples ppf ts =
      Format.fprintf ppf "{%s}"
        (String.concat ", " (List.map Prelude.Tuple.to_string ts))
    in
    let eval_one text =
      incr next_id;
      if explain then begin
        match Rql.Rql_plan.plan_of_text ~mode text with
        | exception Rql.Rql_plan.Error _ -> () (* reported below *)
        | plan -> Format.printf "%s@." (Rql.Rql_plan.describe plan)
      end;
      let before = Engine.question_count engine in
      let r =
        Engine.handle engine
          (Request.make ~id:!next_id
             (Request.Rql { instance = inst; text; cutoff; planner }))
      in
      (match r.Request.result with
      | Ok (Request.Bool b) -> Format.printf "%b@." b
      | Ok (Request.Rel { rank; reps; members }) ->
          Format.printf "rank %d class representatives: %a@." rank pp_tuples
            reps;
          (* the window bound may be the inline [cutoff N], not [-c] *)
          Format.printf "concrete members: %a@." pp_tuples members
      | Ok (Request.Levels levels) ->
          List.iteri
            (fun i level ->
              Format.printf "T^%d: %a@." (i + 1) pp_tuples level)
            levels
      | Ok Request.Undefined -> Format.printf "undefined@."
      | Ok (Request.Count n) -> Format.printf "%d@." n
      | Ok (Request.Ledger_report _) -> () (* rql never answers stats *)
      | Error e -> Format.printf "error: %s@." (Request.error_to_string e));
      (match r.Request.cert with
      | Request.Cert_exact -> ()
      | c ->
          Format.printf "-- certificate: %s@."
            (Json.to_string (Request.certificate_to_json c)));
      Format.printf "-- %d oracle questions@."
        (Engine.question_count engine - before);
      Result.is_ok r.Request.result
    in
    match query with
    | Some text -> if not (eval_one text) then exit 1
    | None ->
        (* REPL: one query per line; exit status reflects the last. *)
        let interactive = Unix.isatty Unix.stdin in
        let rec loop ok =
          if interactive then (
            Format.printf "rql(%s)> " inst;
            Format.print_flush ());
          match input_line stdin with
          | "" -> ok
          | line -> loop (eval_one line)
          | exception End_of_file -> ok
        in
        if not (loop true) then exit 1
  in
  Cmd.v (Cmd.info "rql" ~doc)
    Term.(
      const run $ inst $ cutoff $ naive $ explain $ open_world_flag
      $ decl_flags $ query)

let cmd_bench_rql =
  let doc =
    "Benchmark the RQL planner (E29): Def. 3.9 questions naive vs \
     cost-planned on a mixed fixpoint workload, plan-cache behaviour on \
     a warm re-serve, byte-identity across all modes.  Exits 1 on any \
     violation."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let requests =
    Arg.(
      value & opt int 120
      & info [ "requests" ] ~docv:"N" ~doc:"Workload size.")
  in
  let run out requests =
    let r = Engine_bench.run_rql ?out ~requests () in
    if r.Engine_bench.r_violations <> [] then exit 1
  in
  Cmd.v (Cmd.info "bench-rql" ~doc) Term.(const run $ out $ requests)

let cmd_bench_compile =
  let doc =
    "Benchmark the compiled evaluation tier (E31): interpreter-vs-compiled \
     hot loops (gated at --min-speedup), then a mixed batch served with \
     compilation off and on, checking response bytes and the Def. 3.9 \
     question ledger pairwise on every request.  Exits 1 on any violation."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let requests =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Pairwise-checked batch size.")
  in
  let min_speedup =
    Arg.(
      value & opt float 5.0
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:"Acceptance gate for the interpretation-bound hot loops.")
  in
  let run out requests min_speedup =
    let k = Engine_bench.run_compile ?out ~requests ~min_speedup () in
    if k.Engine_bench.k_violations <> [] then exit 1
  in
  Cmd.v (Cmd.info "bench-compile" ~doc)
    Term.(const run $ out $ requests $ min_speedup)

let cmd_rql_smoke =
  let doc =
    "CI smoke for the RQL front-end: fork a real recdb serve child on an \
     ephemeral loopback port (--port 0, discovered through --port-file), \
     send the committed golden request file over a socket, and diff the \
     responses (sorted by id, stats stripped) against the committed \
     expected output.  Exits 1 on any difference."
  in
  let requests_file =
    Arg.(
      value
      & opt string "test/golden/rql_requests.jsonl"
      & info [ "requests" ] ~docv:"FILE" ~doc:"Golden request file.")
  in
  let expected_file =
    Arg.(
      value
      & opt string "test/golden/rql_expected.jsonl"
      & info [ "expected" ] ~docv:"FILE" ~doc:"Expected response file.")
  in
  let update =
    Arg.(
      value & flag
      & info [ "update" ]
          ~doc:"Rewrite the expected file with the observed responses.")
  in
  let read_lines path =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (if String.trim line = "" then acc else line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  let run requests_file expected_file update =
    let requests = read_lines requests_file in
    if requests = [] then begin
      Format.eprintf "rql-smoke: no requests in %s@." requests_file;
      exit 1
    end;
    (* stats vary with memo state; the golden contract is the
       deterministic part of each response only. *)
    let exe = Sys.executable_name in
    let dir = "_rql_smoke" in
    Proc.rm_rf dir;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let port_file = Filename.concat dir "server.port" in
    let log = Filename.concat dir "server.log" in
    let pid =
      Proc.spawn ~log
        [|
          exe; "serve"; "--port"; "0"; "--port-file"; port_file; "--no-stats";
          "--window"; "64"; "--per-conn-window"; "32";
        |]
    in
    let port =
      match Proc.wait_port_file port_file with
      | Ok (port, _) -> port
      | Error e ->
          Format.eprintf "rql-smoke: %s (child log: %s)@." e log;
          Proc.kill_and_reap pid Sys.sigkill;
          exit 1
    in
    let responses =
      match Proc.send_and_collect ~port requests with
      | Ok responses -> responses
      | Error e ->
          Format.eprintf "rql-smoke: workload send failed: %s@." e;
          Proc.kill_and_reap pid Sys.sigkill;
          exit 1
    in
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    (match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> Proc.rm_rf dir
    | _ ->
        Format.eprintf
          "rql-smoke: child did not drain cleanly on SIGTERM (log: %s)@." log;
        exit 1);
    (* The server may answer out of order across the pipeline; the
       golden file is committed sorted by id. *)
    let observed = Proc.sort_by_id responses in
    if update then begin
      let oc = open_out expected_file in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        observed;
      close_out oc;
      Format.printf "rql-smoke: wrote %d responses to %s@."
        (List.length observed) expected_file
    end
    else begin
      let expected = read_lines expected_file in
      let rec diff i e o acc =
        match (e, o) with
        | [], [] -> List.rev acc
        | e :: es, o :: os ->
            diff (i + 1) es os
              (if String.equal e o then acc
               else Printf.sprintf "line %d:\n  expected: %s\n  got:      %s" i e o :: acc)
        | e :: es, [] ->
            diff (i + 1) es []
              (Printf.sprintf "line %d missing (expected %s)" i e :: acc)
        | [], o :: os ->
            diff (i + 1) [] os
              (Printf.sprintf "line %d unexpected: %s" i o :: acc)
      in
      match diff 1 expected observed [] with
      | [] ->
          Format.printf
            "rql-smoke: %d responses match %s, clean drain@."
            (List.length observed) expected_file
      | diffs ->
          List.iter (Format.eprintf "rql-smoke difference: %s@.") diffs;
          exit 1
    end
  in
  Cmd.v (Cmd.info "rql-smoke" ~doc)
    Term.(const run $ requests_file $ expected_file $ update)

let cmd_store_inspect =
  let doc =
    "Inspect a durable store directory (read-only, safe against a live \
     server): snapshot format version and entry counts by kind, journal \
     admitted/completed/pending counts, corrupt or torn records."
  in
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Store directory (as passed to --store).")
  in
  let run dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Format.eprintf "store-inspect: no such directory: %s@." dir;
      exit 1
    end;
    print_string (Store.inspect ~dir)
  in
  Cmd.v (Cmd.info "store-inspect" ~doc) Term.(const run $ dir)

let cmd_bench_store =
  let doc =
    "Benchmark durability (E30): cold vs warm-start Def. 3.9 questions and \
     time-to-first-response on the mixed workload, snapshot size, and \
     fault-recovery rows (truncation, bit flip, future format version).  \
     Exits 1 on any violation — warm must be byte-identical with < 5% of \
     cold's questions, faults must recover to correct answers."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let requests =
    Arg.(
      value & opt int 160
      & info [ "requests" ] ~docv:"N" ~doc:"Workload size.")
  in
  let run out requests =
    let r = Store_bench.run ?out ~requests () in
    if r.Store_bench.b_violations <> [] then exit 1
  in
  Cmd.v (Cmd.info "bench-store" ~doc) Term.(const run $ out $ requests)

let cmd_store_smoke =
  let doc =
    "CI crash-recovery smoke: serve the mixed workload through a durable \
     child server, kill -9 it mid-load after a snapshot, restart on the \
     same store, and verify the warm server's responses are byte-identical \
     to a sequential reference while asking < 5% of the cold run's oracle \
     questions.  Exits 1 on any violation."
  in
  let requests =
    Arg.(
      value & opt int 120
      & info [ "requests" ] ~docv:"N" ~doc:"Workload size.")
  in
  let dir_arg =
    Arg.(
      value & opt string "_store_smoke"
      & info [ "dir" ] ~docv:"DIR" ~doc:"Scratch store directory.")
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  (* Child management: the smoke forks real [recdb serve] processes so
     kill -9 exercises genuine crash recovery, not an in-process fake. *)
  let spawn_serve ~exe ~dir ~port_file ~log =
    (try Sys.remove port_file with Sys_error _ -> ());
    let log_fd =
      Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let pid =
      Unix.create_process exe
        [|
          exe; "serve"; "--port"; "0"; "-j"; "1"; "--no-stats";
          "--metrics-port"; "0"; "--store"; dir;
          "--snapshot-interval"; "0.4"; "--port-file"; port_file;
        |]
        Unix.stdin log_fd log_fd
    in
    Unix.close log_fd;
    pid
  in
  let wait_port_file path =
    let deadline = Unix.gettimeofday () +. 20. in
    let rec go () =
      if Sys.file_exists path then begin
        let ic = open_in path in
        let p = int_of_string (String.trim (input_line ic)) in
        let mp =
          match input_line ic with
          | l -> Some (int_of_string (String.trim l))
          | exception End_of_file -> None
        in
        close_in ic;
        (p, mp)
      end
      else if Unix.gettimeofday () > deadline then begin
        Format.eprintf "store-smoke: child never wrote %s@." path;
        exit 1
      end
      else begin
        Unix.sleepf 0.05;
        go ()
      end
    in
    go ()
  in
  let send_and_collect ~port lines =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    List.iter (fun line -> Frame.write_line fd line) lines;
    Unix.shutdown fd Unix.SHUTDOWN_SEND;
    let reader = Frame.reader fd in
    let rec collect acc =
      match Frame.read reader with
      | Frame.Line line -> collect (line :: acc)
      | Frame.Oversized _ | Frame.Truncated _ -> collect acc
      | Frame.Eof -> List.rev acc
    in
    let responses = collect [] in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    responses
  in
  let scrape_gauge ~metrics_port name =
    match Expo_server.get ~port:metrics_port ~path:"/metrics" () with
    | Error e ->
        Format.eprintf "store-smoke: metrics scrape failed: %s@." e;
        None
    | Ok body ->
        let prefix = name ^ " " in
        String.split_on_char '\n' body
        |> List.find_map (fun line ->
               if String.length line > String.length prefix
                  && String.sub line 0 (String.length prefix) = prefix
               then
                 float_of_string_opt
                   (String.sub line (String.length prefix)
                      (String.length line - String.length prefix))
               else None)
  in
  let id_of line =
    match Json.parse line with
    | Ok j -> ( match Json.member "id" j with Some (Json.Int i) -> i | _ -> -1)
    | Error _ -> -1
  in
  let sort_by_id lines =
    List.sort (fun a b -> compare (id_of a) (id_of b)) lines
  in
  let run requests dir =
    let exe = Sys.executable_name in
    rm_rf dir;
    let port_file = dir ^ ".port" and log = dir ^ ".log" in
    (try Sys.remove log with Sys_error _ -> ());
    let batch =
      Engine_bench.build_batch (max 1 (requests * 3 / 4))
      @ Engine_bench.build_rql_batch ~planner:Request.Plan_cost
          (max 1 (requests / 4))
    in
    let lines = List.map (fun r -> Json.to_string (Request.to_json r)) batch in
    let reference =
      sort_by_id
        (List.map
           (fun r -> Json.to_string (Request.response_to_json ~stats:false r))
           (Engine.handle_all (Engine.create ()) batch))
    in
    let failures = ref [] in
    let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
    (* --- phase 1: cold durable server ------------------------------ *)
    let pid = spawn_serve ~exe ~dir ~port_file ~log in
    let port, metrics = wait_port_file port_file in
    let cold = sort_by_id (send_and_collect ~port lines) in
    if cold <> reference then fail "cold responses differ from sequential";
    let cold_questions =
      match metrics with
      | None -> None
      | Some mp -> scrape_gauge ~metrics_port:mp "pool_oracle_questions"
    in
    (* wait for a write-behind snapshot to land, then kill -9 mid-load:
       re-send the workload and shoot the server while it is answering *)
    let deadline = Unix.gettimeofday () +. 10. in
    let rec wait_snapshot () =
      match metrics with
      | None -> Unix.sleepf 1.0
      | Some mp -> (
          match scrape_gauge ~metrics_port:mp "store_snapshot_last_entries" with
          | Some n when n > 0. -> ()
          | _ ->
              if Unix.gettimeofday () > deadline then
                fail "no snapshot within 10s of serving"
              else begin
                Unix.sleepf 0.1;
                wait_snapshot ()
              end)
    in
    wait_snapshot ();
    let killer =
      Thread.create
        (fun () ->
          Unix.sleepf 0.05;
          Unix.kill pid Sys.sigkill)
        ()
    in
    (* the crash drops the connection mid-stream; whatever arrives
       before EOF is noise — the contract is about the restart *)
    (try ignore (send_and_collect ~port lines) with Unix.Unix_error _ -> ());
    Thread.join killer;
    ignore (Unix.waitpid [] pid);
    (* --- phase 2: warm restart on the crashed store ---------------- *)
    let pid2 = spawn_serve ~exe ~dir ~port_file ~log in
    let port2, metrics2 = wait_port_file port_file in
    let warm = sort_by_id (send_and_collect ~port:port2 lines) in
    if warm <> reference then fail "warm responses differ from sequential";
    (match (metrics2, cold_questions) with
    | Some mp, Some coldq -> (
        (match scrape_gauge ~metrics_port:mp "pool_oracle_questions" with
        | Some warmq ->
            if coldq > 0. && warmq >= 0.05 *. coldq then
              fail "warm questions %.0f not < 5%%%% of cold %.0f" warmq coldq
            else
              Format.printf
                "store-smoke: cold %.0f questions, warm %.0f (%.1f%%)@."
                coldq warmq
                (if coldq > 0. then 100. *. warmq /. coldq else 0.)
        | None -> fail "pool_oracle_questions missing from warm /metrics");
        match scrape_gauge ~metrics_port:mp "store_last_flush_age_seconds" with
        | Some _ -> ()
        | None -> fail "store_last_flush_age_seconds missing from /metrics")
    | _ -> fail "metrics unavailable; cannot check the question ratio");
    (* --- phase 3: clean SIGTERM drain flushes a final snapshot ----- *)
    Unix.kill pid2 Sys.sigterm;
    (match Unix.waitpid [] pid2 with
    | _, Unix.WEXITED 0 -> ()
    | _, _ -> fail "warm server did not exit cleanly on SIGTERM");
    if not (Sys.file_exists (Filename.concat dir "snapshot.rdb")) then
      fail "no snapshot after clean drain";
    (match !failures with
    | [] ->
        Format.printf
          "store-smoke: %d requests; crash mid-load recovered, responses \
           byte-identical cold and warm, clean drain@."
          (List.length lines);
        rm_rf dir;
        (try Sys.remove port_file with Sys_error _ -> ());
        (try Sys.remove log with Sys_error _ -> ())
    | fs ->
        List.iter (Format.eprintf "store-smoke failure: %s@.") fs;
        Format.eprintf "store-smoke: child log kept at %s@." log;
        exit 1)
  in
  Cmd.v (Cmd.info "store-smoke" ~doc) Term.(const run $ requests $ dir_arg)

let cmd_shard =
  let doc =
    "Run a supervised shard fleet: fork N recdb serve children (each a \
     full engine + pool + net stack on an ephemeral port) and supervise \
     them — a child that dies for any reason is respawned on the same \
     port, so the endpoint list handed to a router stays valid across \
     crashes.  SIGINT/SIGTERM stops supervising and drains every child."
  in
  let n =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Number of shard children.")
  in
  let dir =
    Arg.(
      value & opt string "_shards"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory for per-shard port files and logs.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains per shard.")
  in
  let no_stats =
    Arg.(
      value & flag
      & info [ "no-stats" ]
          ~doc:"Start every shard with --no-stats (deterministic bytes).")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write every shard's serving port, one per line, once all are \
             bound — how scripts and routers discover the fleet.")
  in
  let run n dir jobs no_stats port_file =
    if n < 1 then begin
      Format.eprintf "shard: N must be >= 1@.";
      exit 1
    end;
    let extra_args =
      [ "-j"; string_of_int jobs ] @ if no_stats then [ "--no-stats" ] else []
    in
    match
      Shard_sup.start ~dir ~extra_args ~exe:Sys.executable_name ~n ()
    with
    | Error e ->
        Format.eprintf "shard: %s@." e;
        exit 1
    | Ok sup ->
        let endpoints = Shard_sup.endpoints sup in
        Format.eprintf "recdb: supervising %d shard(s): %s@." n
          (String.concat ", "
             (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) endpoints));
        (match port_file with
        | None -> ()
        | Some path ->
            (* temp + rename so a poller never reads a partial file *)
            let tmp = path ^ ".tmp" in
            let oc = open_out tmp in
            List.iter (fun (_, p) -> Printf.fprintf oc "%d\n" p) endpoints;
            close_out oc;
            Sys.rename tmp path);
        let stop = Atomic.make false in
        let on_signal _ = Atomic.set stop true in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        while not (Atomic.get stop) do
          Unix.sleepf 0.05
        done;
        Format.eprintf "recdb: stopping %d shard(s) (%d respawn(s) so far)@."
          n (Shard_sup.respawns sup);
        Shard_sup.stop sup
  in
  Cmd.v (Cmd.info "shard" ~doc)
    Term.(const run $ n $ dir $ jobs $ no_stats $ port_file)

let cmd_router =
  let doc =
    "Serve the JSON-lines ABI as a cluster front door: consistent-hash \
     every request by its question scope (instance, else op) onto worker \
     shards, with per-shard admission windows, failover to ring siblings \
     on shard death, optional hedged retries on deadline miss, and the \
     merged cluster question ledger behind the stats op.  The router \
     never evaluates a payload, so it can never ask a Def. 3.9 question."
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port; 0 (default) picks an ephemeral port.")
  in
  let shard_args =
    Arg.(
      value & opt_all string []
      & info [ "shard" ] ~docv:"HOST:PORT"
          ~doc:"A shard endpoint (repeatable).")
  in
  let shards_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "shards-file" ] ~docv:"FILE"
          ~doc:
            "Read loopback shard ports, one per line — the file recdb \
             shard --port-file writes.")
  in
  let hedge_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-ms" ] ~docv:"MS"
          ~doc:
            "Hedge a request to its ring sibling when unanswered after MS \
             milliseconds; first response wins, the loser's bytes are \
             dropped (its questions still count in its shard's ledger).")
  in
  let queue_timeout_ms =
    Arg.(
      value & opt float 250.0
      & info [ "queue-timeout-ms" ] ~docv:"MS"
          ~doc:
            "How long a request may wait for a slot in its shard's \
             admission window before being shed with a typed overloaded.")
  in
  let no_stats =
    Arg.(
      value & flag
      & info [ "no-stats" ]
          ~doc:
            "Omit per-request stats from locally generated responses \
             (sheds, parse errors, ledger reports).")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve the Prometheus exposition (cluster_shards_up, \
             cluster_hedges_fired, cluster_hedge_wins, \
             cluster_router_sheds, per-shard cluster_shard_up rows) on a \
             second listener; 0 picks an ephemeral port.")
  in
  let max_line =
    Arg.(
      value & opt int Frame.default_max_line
      & info [ "max-line" ] ~docv:"BYTES" ~doc:"Frame bound.")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound routing port (line 1) and metrics port (line \
             2, if any) to FILE once listening.")
  in
  let run host port window shard_args shards_file hedge_ms queue_timeout_ms
      no_stats metrics_port max_line port_file =
    let parse_endpoint s =
      match String.rindex_opt s ':' with
      | Some i -> (
          let h = String.sub s 0 i in
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some p when p > 0 -> Some (h, p)
          | _ -> None)
      | None -> None
    in
    let from_flags =
      List.map
        (fun s ->
          match parse_endpoint s with
          | Some e -> e
          | None ->
              Format.eprintf "router: bad --shard %s (want HOST:PORT)@." s;
              exit 1)
        shard_args
    in
    let from_file =
      match shards_file with
      | None -> []
      | Some path ->
          let ic =
            try open_in path
            with Sys_error e ->
              Format.eprintf "router: %s@." e;
              exit 1
          in
          let rec go acc =
            match input_line ic with
            | line -> (
                match int_of_string_opt (String.trim line) with
                | Some p when p > 0 -> go (("127.0.0.1", p) :: acc)
                | _ -> go acc)
            | exception End_of_file ->
                close_in ic;
                List.rev acc
          in
          go []
    in
    let shards = from_flags @ from_file in
    if shards = [] then begin
      Format.eprintf "router: no shards (give --shard or --shards-file)@.";
      exit 1
    end;
    let router =
      Router.start ~host ~port ~window
        ?hedge_after_s:(Option.map (fun ms -> ms /. 1000.0) hedge_ms)
        ~queue_timeout_s:(queue_timeout_ms /. 1000.0)
        ~max_line ~stats:(not no_stats) ?metrics_port ~shards ()
    in
    Format.eprintf "recdb: routing on %s:%d over %d shard(s)%s@." host
      (Router.port router) (List.length shards)
      (match hedge_ms with
      | Some ms -> Printf.sprintf ", hedging after %.0fms" ms
      | None -> "");
    (match Router.metrics_port router with
    | Some mp -> Format.eprintf "recdb: metrics on %s:%d/metrics@." host mp
    | None -> ());
    (match port_file with
    | None -> ()
    | Some path ->
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Printf.fprintf oc "%d\n" (Router.port router);
        (match Router.metrics_port router with
        | Some mp -> Printf.fprintf oc "%d\n" mp
        | None -> ());
        close_out oc;
        Sys.rename tmp path);
    let stop = Atomic.make false in
    let on_signal _ = Atomic.set stop true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    while not (Atomic.get stop) do
      Unix.sleepf 0.05
    done;
    let c = Router.counters router in
    Format.eprintf
      "recdb: draining router (routed %d, hedges %d, wins %d, sheds %d)...@."
      c.Router.routed c.Router.hedges_fired c.Router.hedge_wins c.Router.sheds;
    match Router.drain ~timeout_s:30.0 router with
    | `Clean -> Format.eprintf "recdb: router drained clean@."
    | `Forced n ->
        Format.eprintf "recdb: drain aborted %d client(s)@." n;
        exit 1
  in
  Cmd.v (Cmd.info "router" ~doc)
    Term.(
      const run $ host_arg $ port $ window_arg $ shard_args $ shards_file
      $ hedge_ms $ queue_timeout_ms $ no_stats $ metrics_port $ max_line
      $ port_file)

let cmd_bench_cluster =
  let doc =
    "Benchmark sharded cluster serving (E32): byte-identity and ledger \
     containment of the mixed workload routed over real shard processes \
     vs the sequential in-process reference, hedged tail latency under an \
     injected slow shard (duplicate questions visibly counted), and \
     kill -9 mid-load recovery through the supervisor.  Exits 1 on any \
     violation — this is the cluster-smoke CI gate."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let requests =
    Arg.(
      value & opt int 240
      & info [ "requests" ] ~docv:"N" ~doc:"Workload size.")
  in
  let shards =
    Arg.(
      value & opt int 3
      & info [ "shards" ] ~docv:"N" ~doc:"Shard child processes.")
  in
  let run out requests shards =
    let r =
      Cluster_bench.run ?out ~requests ~shards ~exe:Sys.executable_name ()
    in
    if r.Cluster_bench.c_violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "bench-cluster" ~doc)
    Term.(const run $ out $ requests $ shards)

let cmd_bench_incomplete =
  let doc =
    "Benchmark incompleteness-aware answering (E33): per-request mode \
     containment certain \xe2\x8a\x86 exact \xe2\x8a\x86 possible on the \
     demo open-world declarations, closed-world byte-identity across all \
     four modes, approximate-mode convergence to the certain answer as \
     the consult budget grows, and zero question-ledger overhead for the \
     certificate machinery.  Exits 1 on any violation."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let requests =
    Arg.(
      value & opt int 120
      & info [ "requests" ] ~docv:"N" ~doc:"Workload size.")
  in
  let run out requests =
    let r = Incomplete_bench.run ?out ~requests () in
    if Incomplete_bench.violations r <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "bench-incomplete" ~doc)
    Term.(const run $ out $ requests)

let cmd_incomplete_smoke =
  let doc =
    "CI smoke for incompleteness-aware answering over the wire: start a \
     server with the demo open-world declarations, send mode-carrying \
     requests (wire field and RQL text prefix), and check the \
     certain/exact/possible containment, the typed certificates, that an \
     exact response carries no cert field, that a closed-world instance \
     answers identically in every mode, that an unknown top-level field \
     (a \"mod\" typo) is warn-and-count (scraped from /metrics), and \
     that --default-mode applies to modeless requests.  Exits 1 on any \
     failure."
  in
  let run () =
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    let decls = decls_of_flags ~open_world:true ~decls:[] in
    (* Server 1: demo declarations, default mode exact. *)
    let server =
      Server.start ~window:64 ~per_conn_window:16 ~metrics_port:0
        ~engine_config:{ Engine.default_config with decls }
        ()
    in
    let port = Server.port server in
    let mport =
      match Server.metrics_port server with
      | Some p -> p
      | None ->
          Format.eprintf "incomplete-smoke: no metrics listener came up@.";
          exit 1
    in
    let rado_sentence mode_fields id =
      Printf.sprintf
        {|{"id":%d,"op":"sentence","instance":"rado","sentence":"exists x. exists y. R1(x, y)"%s}|}
        id mode_fields
    in
    let tri_sentence mode_fields id =
      Printf.sprintf
        {|{"id":%d,"op":"sentence","instance":"triangles","sentence":"exists x. exists y. R1(x, y)"%s}|}
        id mode_fields
    in
    let lines =
      [
        rado_sentence {|,"mode":"certain"|} 1;
        rado_sentence "" 2;
        rado_sentence {|,"mode":"possible"|} 3;
        rado_sentence {|,"mode":"approximate","budget":1|} 4;
        tri_sentence {|,"mode":"certain"|} 5;
        tri_sentence "" 6;
        (* "mod" is a typo'd "mode": warn-and-count, served exact *)
        tri_sentence {|,"mod":"possible"|} 7;
        {|{"id":8,"op":"rql","instance":"mod3","text":"mode possible query {(x, y) | R1(x, y)} cutoff 3","cutoff":3}|};
      ]
    in
    let parse_responses raw =
      List.filter_map
        (fun l ->
          match Json.parse l with Ok j -> Some j | Error _ -> None)
        (Proc.sort_by_id raw)
    in
    let field name j = Json.member name j in
    let cert_kind j =
      match field "cert" j with
      | Some c -> (
          match Json.member "kind" c with
          | Some (Json.String k) -> Some (k, c)
          | _ -> None)
      | None -> None
    in
    let ok_bool j =
      match field "ok" j with
      | Some ok -> (
          match Json.member "value" ok with
          | Some (Json.Bool b) -> Some b
          | _ -> None)
      | None -> None
    in
    (match Proc.send_and_collect ~port lines with
    | Error e -> fail "exchange failed: %s" e
    | Ok raw -> (
        match parse_responses raw with
        | [ r1; r2; r3; r4; r5; r6; r7; r8 ] ->
            (* open world: certain false ⊆ exact true ⊆ possible true *)
            if ok_bool r1 <> Some false then
              fail "rado certain: expected false (unknown served as lower)";
            if ok_bool r2 <> Some true then fail "rado exact: expected true";
            if ok_bool r3 <> Some true then
              fail "rado possible: expected true (unknown served as upper)";
            (match cert_kind r1 with
            | Some ("certain_lower_bound", _) -> ()
            | _ -> fail "rado certain: expected a certain_lower_bound cert");
            if cert_kind r2 <> None then
              fail "rado exact: response must carry no cert field";
            (match cert_kind r3 with
            | Some ("possible_upper_bound", _) -> ()
            | _ -> fail "rado possible: expected a possible_upper_bound cert");
            (match cert_kind r4 with
            | Some ("approximate", c) -> (
                match Json.member "budget_spent" c with
                | Some (Json.Int n) when n <= 1 -> ()
                | _ -> fail "rado approximate: budget_spent exceeds budget 1")
            | _ -> fail "rado approximate at budget 1: expected to trip");
            (* closed world: every mode = exact bytes, no certs *)
            List.iter
              (fun (name, r) ->
                if ok_bool r <> ok_bool r6 then
                  fail "triangles %s: differs from exact" name;
                if cert_kind r <> None then
                  fail "triangles %s: unexpected cert on a total instance"
                    name)
              [ ("certain", r5); ("typo'd-mode", r7) ];
            if cert_kind r6 <> None then
              fail "triangles exact: unexpected cert field";
            (* RQL text prefix: mode travels in the query text *)
            (match cert_kind r8 with
            | Some ("possible_upper_bound", _) -> ()
            | _ ->
                fail
                  "rql 'mode possible' prefix: expected a \
                   possible_upper_bound cert")
        | rs -> fail "expected 8 responses, got %d" (List.length rs)));
    (* the typo'd field must be scrapeable *)
    (match Expo_server.get ~port:mport ~path:"/metrics" () with
    | Error reason -> fail "/metrics scrape failed: %s" reason
    | Ok body ->
        let counter_at_least name n =
          List.exists
            (fun l ->
              match String.index_opt l ' ' with
              | Some i when String.sub l 0 i = name ->
                  (match
                     int_of_string_opt
                       (String.trim
                          (String.sub l (i + 1) (String.length l - i - 1)))
                   with
                  | Some v -> v >= n
                  | None -> false)
              | _ -> false)
            (String.split_on_char '\n' body)
        in
        if not (counter_at_least "server_frames_unknown_field_total" 1) then
          fail "metrics: server_frames_unknown_field_total did not count";
        if not (counter_at_least "engine_mode_certain_total" 1) then
          fail "metrics: engine_mode_certain_total did not count");
    (match Server.drain ~timeout_s:30.0 server with
    | `Clean -> ()
    | `Forced n -> fail "drain aborted %d connection(s)" n);
    (* Server 2: --default-mode certain applies to modeless requests. *)
    let server2 =
      Server.start ~window:64 ~per_conn_window:16
        ~engine_config:
          {
            Engine.default_config with
            decls;
            default_mode = Request.M_certain;
          }
        ()
    in
    (match
       Proc.send_and_collect ~port:(Server.port server2) [ rado_sentence "" 1 ]
     with
    | Error e -> fail "default-mode exchange failed: %s" e
    | Ok raw -> (
        match parse_responses raw with
        | [ r ] -> (
            if ok_bool r <> Some false then
              fail "default-mode certain: expected false";
            match cert_kind r with
            | Some ("certain_lower_bound", _) -> ()
            | _ ->
                fail "default-mode certain: expected a certain_lower_bound \
                      cert")
        | rs -> fail "default-mode: expected 1 response, got %d" (List.length rs)));
    (match Server.drain ~timeout_s:30.0 server2 with
    | `Clean -> ()
    | `Forced n -> fail "drain (server 2) aborted %d connection(s)" n);
    match List.rev !failures with
    | [] ->
        Format.printf
          "incomplete-smoke: modes, certificates, closed-world identity, \
           unknown-field counter and --default-mode all check out@."
    | fs ->
        List.iter (Format.eprintf "incomplete-smoke failure: %s@.") fs;
        exit 1
  in
  Cmd.v (Cmd.info "incomplete-smoke" ~doc) Term.(const run $ const ())

let () =
  let doc = "query languages over recursive (infinite, computable) databases" in
  let info = Cmd.info "recdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            cmd_instances;
            cmd_tree;
            cmd_classes;
            cmd_query;
            cmd_sentence;
            cmd_qlhs;
            cmd_rql;
            cmd_normalize;
            cmd_serve_batch;
            cmd_serve;
            cmd_loadgen;
            cmd_bench_engine;
            cmd_bench_parallel;
            cmd_bench_server;
            cmd_server_smoke;
            cmd_crash_test;
            cmd_bench_resilience;
            cmd_bench_obs;
            cmd_stats;
            cmd_obs_smoke;
            cmd_bench_rql;
            cmd_bench_compile;
            cmd_rql_smoke;
            cmd_store_inspect;
            cmd_bench_store;
            cmd_store_smoke;
            cmd_shard;
            cmd_router;
            cmd_bench_cluster;
            cmd_bench_incomplete;
            cmd_incomplete_smoke;
          ]))
