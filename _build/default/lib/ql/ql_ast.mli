(** Abstract syntax of the query language QL of Chandra and Harel [CH],
    shared by all three interpreters in this reproduction:

    {ul
    {- {!Ql_finite} — the original finitary semantics ([CH], the baseline
       the paper builds on);}
    {- {!Ql_hs} — the paper's QL_hs (§3.3), acting on representations
       [C_B] of highly symmetric r-dbs, with the added test [|Y| = 1?]
       (footnote 8);}
    {- [Fcf.Qlf] — the finite/co-finite variant QL_f+ (§4), with the
       added test [|Y| < ∞].}}

    Programs denote queries; the result of a halted program is the
    content of variable [Y1] (index 0). *)

type term =
  | E  (** the diagonal [{(a, a) | a ∈ D}] (rank 2) *)
  | Rel of int  (** input relation Relᵢ (0-based) *)
  | Var of int  (** program variable Yᵢ (0-based) *)
  | Inter of term * term  (** e ∩ f — ranks must agree *)
  | Comp of term  (** ¬e — complement within [Dⁿ] (resp. [Tⁿ]) *)
  | Up of term  (** e↑ — extend on the right by every domain element *)
  | Down of term  (** e↓ — project out the {e first} coordinate *)
  | Swap of term  (** e~ — exchange the two rightmost coordinates *)

type program =
  | Assign of int * term  (** Yᵢ ← e *)
  | Seq of program * program  (** (P; P′) *)
  | While_empty of int * program  (** while |Yᵢ| = 0 do P *)
  | While_single of int * program
      (** while |Yᵢ| = 1 do P — the test added for QL_hs (footnote 8) *)
  | While_finite of int * program
      (** while |Yᵢ| < ∞ do P — only meaningful in QL_f+; the finite and
          hs interpreters reject it *)

val max_var : program -> int
(** Largest variable index mentioned (-1 if none). *)

val pp_term : Format.formatter -> term -> unit
val pp_program : Format.formatter -> program -> unit
val term_to_string : term -> string
val program_to_string : program -> string
