(** The finitary semantics of QL — Chandra and Harel's original language
    [CH], which the paper's QL_hs modifies.  Values are finite relations
    over an explicit finite domain [D]; this is the baseline the
    experiments compare QL_hs against.

    Rank bookkeeping: every value carries its rank.  The empty relation
    is treated as rank-polymorphic on intersection (so freshly
    initialized variables combine with anything), but complement and the
    structural operators use the recorded rank. *)

type value = { rank : int; tuples : Prelude.Tupleset.t }

val empty : value
(** The initial value of variables: the empty relation (recorded rank 0,
    polymorphic under intersection). *)

val of_tuples : rank:int -> Prelude.Tupleset.t -> value

val algebra :
  domain:int list ->
  rels:(int * Prelude.Tupleset.t) array ->
  value Ql_interp.algebra
(** The QL algebra over finite domain [D = domain] with input relations
    given as (arity, tuples).  [|Y| < ∞] is unavailable (footnote 9 — QL
    proper has no such test). *)

val algebra_of_db :
  Rdb.Database.t -> domain:int list -> value Ql_interp.algebra
(** Materialize a database's relations over the given finite domain and
    build the algebra (intended for finite databases whose support lies
    within [domain]). *)

val run :
  domain:int list ->
  rels:(int * Prelude.Tupleset.t) array ->
  fuel:int ->
  Ql_ast.program ->
  value Ql_interp.outcome

val equal_value : value -> value -> bool
(** Equality treating all empty relations alike. *)
