(** The integer re-coding at the heart of the Theorem 3.1 completeness
    proof (Steps 1–4).

    Step 1 computes a tuple [d] of distinct elements whose projections
    cover all the input representatives (implemented in [Hs.Ef]).  Step 2
    re-codes the input as [X = (X₁, ..., X_k)] over ℕ: [Xⱼ] holds the
    index vectors [(i₁, ..., i_{aⱼ})] whose projection [d[i₁, ..., i_{aⱼ}]]
    belongs to [Rⱼ] — a finite relational structure over the integers
    [{0, ..., |d|-1}], isomorphic to the restriction of B to [d]'s
    elements and rich enough to reconstruct every [Cⱼ].  Step 3 runs the
    query on the integer side (here: any OCaml function — standing in
    for the Turing-machine capability of QL_hs).  Step 4 decodes the
    integer-side answer back to representatives through [d]:
    [Q(C_B) = ⋃ classes of d[i₁, ..., i_m]]. *)

type coded = {
  d : Prelude.Tuple.t;  (** the coding tuple (distinct elements, a tree path) *)
  x : Prelude.Tupleset.t array;
      (** [x.(j)]: index vectors over [{0, ..., |d|-1}] whose [d]-projection
          lies in [Rⱼ] *)
}

val encode : Hs.Hsdb.t -> d:Prelude.Tuple.t -> coded
(** Step 2.  Raises [Invalid_argument] if [d] fails the covering
    condition ([Hs.Ef.projections_cover]). *)

val encode_auto : Hs.Hsdb.t -> coded
(** {!encode} with [d] found by [Hs.Ef.find_coding_tuple] (Step 1). *)

val decode : Hs.Hsdb.t -> coded -> Prelude.Tupleset.t -> Prelude.Tupleset.t
(** Step 4: map an integer-side answer (a set of index vectors, all of
    one rank) to the set of representatives of the classes of the
    corresponding projections of [d]. *)

val run_integer_query :
  Hs.Hsdb.t ->
  ?d:Prelude.Tuple.t ->
  (coded -> Prelude.Tupleset.t) ->
  Prelude.Tupleset.t
(** Steps 1–4 glued: encode, apply the integer-side query, decode. *)
