open Prelude

type coded = { d : Tuple.t; x : Tupleset.t array }

let encode t ~d =
  if not (Hs.Ef.projections_cover t d) then
    invalid_arg "Coding.encode: d does not cover the input representatives";
  let n = Tuple.rank d in
  let db_type = Hs.Hsdb.db_type t in
  let x =
    Array.mapi
      (fun i a ->
        Combinat.fold_cartesian
          (fun acc js ->
            if Hs.Hsdb.rel_mem t i (Tuple.project d js) then
              Tupleset.add (Array.copy js) acc
            else acc)
          Tupleset.empty ~width:a ~bound:n)
      db_type
  in
  { d; x }

let encode_auto t = encode t ~d:(Hs.Ef.find_coding_tuple t)

let decode t coded answer =
  Tupleset.fold
    (fun js acc ->
      Tupleset.add (Hs.Hsdb.representative t (Tuple.project coded.d js)) acc)
    answer Tupleset.empty

let run_integer_query t ?d q =
  let d = match d with Some d -> d | None -> Hs.Ef.find_coding_tuple t in
  let coded = encode t ~d in
  decode t coded (q coded)
