open Prelude

type value = { rank : int; reps : Tupleset.t }

let empty = { rank = 0; reps = Tupleset.empty }

let equal_value a b =
  if Tupleset.is_empty a.reps && Tupleset.is_empty b.reps then true
  else a.rank = b.rank && Tupleset.equal a.reps b.reps

let of_reps t ~rank reps =
  let normalized =
    Tupleset.fold
      (fun u acc ->
        if Tuple.rank u <> rank then
          invalid_arg "Ql_hs.of_reps: rank mismatch";
        Tupleset.add (Hs.Hsdb.representative t u) acc)
      reps Tupleset.empty
  in
  { rank; reps = normalized }

let algebra t =
  let tn n = Tupleset.of_list (Hs.Hsdb.paths t n) in
  let e_const () =
    {
      rank = 2;
      reps = Tupleset.filter (fun p -> p.(0) = p.(1)) (tn 2);
    }
  in
  let rel i =
    let db_type = Hs.Hsdb.db_type t in
    if i < 0 || i >= Array.length db_type then
      raise (Ql_interp.Rank_error (Printf.sprintf "no relation Rel%d" (i + 1)));
    { rank = db_type.(i); reps = Hs.Hsdb.reps t i }
  in
  let inter a b =
    if Tupleset.is_empty a.reps then { b with reps = Tupleset.empty }
    else if Tupleset.is_empty b.reps then { a with reps = Tupleset.empty }
    else if a.rank <> b.rank then
      raise
        (Ql_interp.Rank_error
           (Printf.sprintf "∩ of ranks %d and %d" a.rank b.rank))
    else { a with reps = Tupleset.inter a.reps b.reps }
  in
  let comp a = { a with reps = Tupleset.diff (tn a.rank) a.reps } in
  let up a =
    {
      rank = a.rank + 1;
      reps =
        Tupleset.fold
          (fun u acc ->
            List.fold_left
              (fun acc d -> Tupleset.add (Tuple.append u d) acc)
              acc (Hs.Hsdb.children t u))
          a.reps Tupleset.empty;
    }
  in
  let down a =
    if a.rank < 1 then raise (Ql_interp.Rank_error "↓ on rank 0");
    {
      rank = a.rank - 1;
      reps =
        Tupleset.fold
          (fun u acc ->
            Tupleset.add (Hs.Hsdb.representative t (Tuple.drop_first u)) acc)
          a.reps Tupleset.empty;
    }
  in
  let swap a =
    if a.rank < 2 then raise (Ql_interp.Rank_error "~ on rank < 2");
    {
      a with
      reps =
        Tupleset.fold
          (fun u acc ->
            Tupleset.add
              (Hs.Hsdb.representative t (Tuple.swap_last_two u))
              acc)
          a.reps Tupleset.empty;
    }
  in
  {
    Ql_interp.e_const;
    rel;
    inter;
    comp;
    up;
    down;
    swap;
    initial = empty;
    is_empty = (fun a -> Tupleset.is_empty a.reps);
    is_single = (fun a -> Tupleset.cardinal a.reps = 1);
    is_finite = None;
  }

let run t ~fuel program = Ql_interp.run ~algebra:(algebra t) ~fuel program

let eval_term t e =
  Ql_interp.eval_term ~algebra:(algebra t) ~store:[||] e

let denotation t value ~cutoff =
  Combinat.fold_cartesian
    (fun acc u ->
      if Tupleset.exists (fun p -> Hs.Hsdb.equiv t u p) value.reps then
        Tupleset.add (Array.copy u) acc
      else acc)
    Tupleset.empty ~width:value.rank ~bound:cutoff
