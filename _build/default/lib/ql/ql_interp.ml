type 'v algebra = {
  e_const : unit -> 'v;
  rel : int -> 'v;
  inter : 'v -> 'v -> 'v;
  comp : 'v -> 'v;
  up : 'v -> 'v;
  down : 'v -> 'v;
  swap : 'v -> 'v;
  initial : 'v;
  is_empty : 'v -> bool;
  is_single : 'v -> bool;
  is_finite : ('v -> bool) option;
}

exception Rank_error of string

type 'v outcome = Halted of 'v array | Timeout | Ill_formed of string

let rec eval_term ~algebra ~store = function
  | Ql_ast.E -> algebra.e_const ()
  | Ql_ast.Rel i -> algebra.rel i
  | Ql_ast.Var i ->
      if i < Array.length store then store.(i) else algebra.initial
  | Ql_ast.Inter (e, f) ->
      algebra.inter (eval_term ~algebra ~store e) (eval_term ~algebra ~store f)
  | Ql_ast.Comp e -> algebra.comp (eval_term ~algebra ~store e)
  | Ql_ast.Up e -> algebra.up (eval_term ~algebra ~store e)
  | Ql_ast.Down e -> algebra.down (eval_term ~algebra ~store e)
  | Ql_ast.Swap e -> algebra.swap (eval_term ~algebra ~store e)

exception Out_of_fuel
exception Unsupported of string

let run ~algebra ~fuel program =
  let nvars = max 1 (Ql_ast.max_var program + 1) in
  let store = Array.make nvars algebra.initial in
  let fuel = ref fuel in
  let spend () =
    decr fuel;
    if !fuel < 0 then raise Out_of_fuel
  in
  let rec exec = function
    | Ql_ast.Assign (i, e) ->
        spend ();
        store.(i) <- eval_term ~algebra ~store e
    | Ql_ast.Seq (p, q) ->
        exec p;
        exec q
    | Ql_ast.While_empty (i, p) ->
        while algebra.is_empty store.(i) do
          spend ();
          exec p
        done
    | Ql_ast.While_single (i, p) ->
        while algebra.is_single store.(i) do
          spend ();
          exec p
        done
    | Ql_ast.While_finite (i, p) -> begin
        match algebra.is_finite with
        | None ->
            raise (Unsupported "the |Y| < ∞ test is not available here")
        | Some is_finite ->
            while is_finite store.(i) do
              spend ();
              exec p
            done
      end
  in
  match exec program with
  | () -> Halted store
  | exception Out_of_fuel -> Timeout
  | exception Rank_error msg -> Ill_formed msg
  | exception Unsupported msg -> Ill_formed msg

let result = function
  | Halted store -> Some store.(0)
  | Timeout | Ill_formed _ -> None
