open Prelude

type value = { rank : int; tuples : Tupleset.t }

let empty = { rank = 0; tuples = Tupleset.empty }

let of_tuples ~rank tuples =
  Tupleset.iter
    (fun u ->
      if Tuple.rank u <> rank then
        invalid_arg "Ql_finite.of_tuples: rank mismatch")
    tuples;
  { rank; tuples }

let equal_value a b =
  if Tupleset.is_empty a.tuples && Tupleset.is_empty b.tuples then true
  else a.rank = b.rank && Tupleset.equal a.tuples b.tuples

let algebra ~domain ~rels =
  let domain = List.sort_uniq compare domain in
  let full rank =
    Combinat.fold_cartesian
      (fun acc js ->
        Tupleset.add (Array.map (List.nth domain) js) acc)
      Tupleset.empty ~width:rank ~bound:(List.length domain)
  in
  let e_const () =
    {
      rank = 2;
      tuples =
        List.fold_left
          (fun acc a -> Tupleset.add [| a; a |] acc)
          Tupleset.empty domain;
    }
  in
  let rel i =
    if i < 0 || i >= Array.length rels then
      raise (Ql_interp.Rank_error (Printf.sprintf "no relation Rel%d" (i + 1)));
    let arity, tuples = rels.(i) in
    { rank = arity; tuples }
  in
  let inter a b =
    if Tupleset.is_empty a.tuples then { b with tuples = Tupleset.empty }
    else if Tupleset.is_empty b.tuples then { a with tuples = Tupleset.empty }
    else if a.rank <> b.rank then
      raise
        (Ql_interp.Rank_error
           (Printf.sprintf "∩ of ranks %d and %d" a.rank b.rank))
    else { a with tuples = Tupleset.inter a.tuples b.tuples }
  in
  let comp a = { a with tuples = Tupleset.diff (full a.rank) a.tuples } in
  let up a =
    {
      rank = a.rank + 1;
      tuples =
        Tupleset.fold
          (fun u acc ->
            List.fold_left
              (fun acc d -> Tupleset.add (Tuple.append u d) acc)
              acc domain)
          a.tuples Tupleset.empty;
    }
  in
  let down a =
    if a.rank < 1 then raise (Ql_interp.Rank_error "↓ on rank 0");
    {
      rank = a.rank - 1;
      tuples =
        Tupleset.fold
          (fun u acc -> Tupleset.add (Tuple.drop_first u) acc)
          a.tuples Tupleset.empty;
    }
  in
  let swap a =
    if a.rank < 2 then raise (Ql_interp.Rank_error "~ on rank < 2");
    {
      a with
      tuples =
        Tupleset.fold
          (fun u acc -> Tupleset.add (Tuple.swap_last_two u) acc)
          a.tuples Tupleset.empty;
    }
  in
  {
    Ql_interp.e_const;
    rel;
    inter;
    comp;
    up;
    down;
    swap;
    initial = empty;
    is_empty = (fun a -> Tupleset.is_empty a.tuples);
    is_single = (fun a -> Tupleset.cardinal a.tuples = 1);
    is_finite = None;
  }

let algebra_of_db db ~domain =
  let rels =
    Array.map
      (fun r ->
        let arity = Rdb.Relation.arity r in
        let tuples =
          Combinat.fold_cartesian
            (fun acc js ->
              let u = Array.map (List.nth domain) js in
              if Rdb.Relation.mem r u then Tupleset.add u acc else acc)
            Tupleset.empty ~width:arity ~bound:(List.length domain)
        in
        (arity, tuples))
      (Rdb.Database.relations db)
  in
  algebra ~domain ~rels

let run ~domain ~rels ~fuel program =
  Ql_interp.run ~algebra:(algebra ~domain ~rels) ~fuel program
