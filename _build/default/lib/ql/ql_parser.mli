(** Concrete syntax for QL terms and programs.

    Terms:
    {v
    term  ::= "E" | "Rel" NUM | "Y" NUM
            | term "&" term          (intersection; left associative)
            | "~" term               (complement ¬)
            | term "^"               (up ↑)
            | term "!"               (down ↓)
            | term "%"               (swap ~ of the paper; '%' avoids
                                      clashing with our complement sign)
            | "(" term ")"
    v}
    Postfix operators bind tightest, then prefix [~], then [&].

    Programs:
    {v
    prog  ::= "Y" NUM "<-" term
            | prog ";" prog
            | "while" "|" "Y" NUM "|" "=" ("0" | "1") "do" "{" prog "}"
            | "while" "|" "Y" NUM "|" "<" "inf" "do" "{" prog "}"
    v}

    The printer {!program_to_source} emits this syntax, and
    [parse_program (program_to_source p) = p]. *)

exception Error of string

val term : string -> Ql_ast.term
val program : string -> Ql_ast.program

val term_to_source : Ql_ast.term -> string
(** Parseable rendering (unlike [Ql_ast.term_to_string], which uses the
    paper's symbols for display). *)

val program_to_source : Ql_ast.program -> string
