open Ql_ast

let union e f = Comp (Inter (Comp e, Comp f))
let diff e f = Inter (e, Comp f)
let symmetric_closure e = union e (Swap e)
let truth = Down (Down E)
let falsity = Comp truth

let nonempty_flag ~rank e =
  let rec downs k acc = if k = 0 then acc else downs (k - 1) (Down acc) in
  downs rank e

let seq = function
  | [] -> invalid_arg "Ql_macros.seq: empty sequence"
  | p :: rest -> List.fold_left (fun acc q -> Seq (acc, q)) p rest

let if_empty ~flag ~cond ~rank p =
  (* flag := {()} iff cond nonempty; run p while flag empty, then force
     the flag nonempty so the loop exits after one iteration. *)
  seq
    [
      Assign (flag, nonempty_flag ~rank cond);
      While_empty (flag, seq [ p; Assign (flag, truth) ]);
    ]

let if_nonempty ~flag ~cond ~rank p =
  (* flag := {()} iff cond empty. *)
  seq
    [
      Assign (flag, Comp (nonempty_flag ~rank cond));
      While_empty (flag, seq [ p; Assign (flag, truth) ]);
    ]

let if_then_else ~flag1 ~flag2 ~cond ~rank p q =
  seq [ if_empty ~flag:flag1 ~cond ~rank p; if_nonempty ~flag:flag2 ~cond ~rank q ]

let counter_zero y = Assign (y, truth)
let counter_incr y = Assign (y, Up (Var y))
let counter_decr y = Assign (y, Down (Var y))

let counter_add_const y k =
  if k < 0 then invalid_arg "Ql_macros.counter_add_const: negative";
  if k = 0 then Assign (y, Var y)
  else seq (List.init k (fun _ -> counter_incr y))
