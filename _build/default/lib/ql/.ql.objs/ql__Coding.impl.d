lib/ql/coding.ml: Array Combinat Hs Prelude Tuple Tupleset
