lib/ql/ql_hs.ml: Array Combinat Hs List Prelude Printf Ql_interp Tuple Tupleset
