lib/ql/ql_interp.mli: Ql_ast
