lib/ql/ql_interp.ml: Array Ql_ast
