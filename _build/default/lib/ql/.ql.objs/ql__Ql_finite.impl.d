lib/ql/ql_finite.ml: Array Combinat List Prelude Printf Ql_interp Rdb Tuple Tupleset
