lib/ql/coding.mli: Hs Prelude
