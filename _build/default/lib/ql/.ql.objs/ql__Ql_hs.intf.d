lib/ql/ql_hs.mli: Hs Prelude Ql_ast Ql_interp
