lib/ql/ql_parser.mli: Ql_ast
