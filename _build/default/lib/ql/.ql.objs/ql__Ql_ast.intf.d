lib/ql/ql_ast.mli: Format
