lib/ql/ql_macros.mli: Ql_ast
