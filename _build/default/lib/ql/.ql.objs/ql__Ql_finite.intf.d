lib/ql/ql_finite.mli: Prelude Ql_ast Ql_interp Rdb
