lib/ql/ql_ast.ml: Format
