lib/ql/ql_macros.ml: List Ql_ast
