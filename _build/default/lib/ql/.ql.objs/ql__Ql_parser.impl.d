lib/ql/ql_parser.ml: Array List Printf Ql_ast String
