type term =
  | E
  | Rel of int
  | Var of int
  | Inter of term * term
  | Comp of term
  | Up of term
  | Down of term
  | Swap of term

type program =
  | Assign of int * term
  | Seq of program * program
  | While_empty of int * program
  | While_single of int * program
  | While_finite of int * program

let rec max_var_term = function
  | E | Rel _ -> -1
  | Var i -> i
  | Inter (e, f) -> max (max_var_term e) (max_var_term f)
  | Comp e | Up e | Down e | Swap e -> max_var_term e

let rec max_var = function
  | Assign (i, e) -> max i (max_var_term e)
  | Seq (p, q) -> max (max_var p) (max_var q)
  | While_empty (i, p) | While_single (i, p) | While_finite (i, p) ->
      max i (max_var p)

let rec pp_term ppf = function
  | E -> Format.pp_print_string ppf "E"
  | Rel i -> Format.fprintf ppf "Rel%d" (i + 1)
  | Var i -> Format.fprintf ppf "Y%d" (i + 1)
  | Inter (e, f) -> Format.fprintf ppf "(%a ∩ %a)" pp_term e pp_term f
  | Comp e -> Format.fprintf ppf "¬%a" pp_term e
  | Up e -> Format.fprintf ppf "%a↑" pp_term e
  | Down e -> Format.fprintf ppf "%a↓" pp_term e
  | Swap e -> Format.fprintf ppf "%a~" pp_term e

let rec pp_program ppf = function
  | Assign (i, e) -> Format.fprintf ppf "Y%d ← %a" (i + 1) pp_term e
  | Seq (p, q) -> Format.fprintf ppf "@[<v>%a;@,%a@]" pp_program p pp_program q
  | While_empty (i, p) ->
      Format.fprintf ppf "@[<v 2>while |Y%d| = 0 do@,%a@]" (i + 1) pp_program p
  | While_single (i, p) ->
      Format.fprintf ppf "@[<v 2>while |Y%d| = 1 do@,%a@]" (i + 1) pp_program p
  | While_finite (i, p) ->
      Format.fprintf ppf "@[<v 2>while |Y%d| < ∞ do@,%a@]" (i + 1) pp_program p

let term_to_string e = Format.asprintf "%a" pp_term e
let program_to_string p = Format.asprintf "%a" pp_program p
