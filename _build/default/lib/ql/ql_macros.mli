(** Derived QL constructs, programmed from the primitives as in [CH]
    ("the conventional operators … can be programmed in QL_hs precisely
    as is done in [CH]").

    Variable hygiene is explicit: macros that need scratch variables take
    them as arguments; callers pass indices not otherwise used. *)

val union : Ql_ast.term -> Ql_ast.term -> Ql_ast.term
(** e ∪ f = ¬(¬e ∩ ¬f). *)

val diff : Ql_ast.term -> Ql_ast.term -> Ql_ast.term
(** e − f = e ∩ ¬f. *)

val symmetric_closure : Ql_ast.term -> Ql_ast.term
(** e ∪ e~ (for rank-2 terms). *)

val truth : Ql_ast.term
(** The rank-0 singleton [{()}] — [E↓↓], the counter "0" of the
    completeness proof ("E↓↓ plays the role of 0"). *)

val falsity : Ql_ast.term
(** The rank-0 empty relation ¬(E↓↓). *)

val nonempty_flag : rank:int -> Ql_ast.term -> Ql_ast.term
(** [nonempty_flag ~rank e] is [e↓…↓] ([rank] times): the rank-0
    singleton iff [e] is non-empty.  The caller must know the static
    rank of [e]. *)

val seq : Ql_ast.program list -> Ql_ast.program
(** Sequence a non-empty list of programs. *)

val if_empty :
  flag:int -> cond:Ql_ast.term -> rank:int -> Ql_ast.program -> Ql_ast.program
(** [if_empty ~flag ~cond ~rank p]: run [p] once iff the rank-[rank] term
    [cond] is empty.  Implemented with a [while |Y_flag| = 0] loop whose
    body sets the flag ([CH]'s encoding); [flag] must be fresh. *)

val if_nonempty :
  flag:int -> cond:Ql_ast.term -> rank:int -> Ql_ast.program -> Ql_ast.program

val if_then_else :
  flag1:int ->
  flag2:int ->
  cond:Ql_ast.term ->
  rank:int ->
  Ql_ast.program ->
  Ql_ast.program ->
  Ql_ast.program
(** [if_then_else ~flag1 ~flag2 ~cond ~rank p q]: [p] if [cond] is empty,
    else [q]. *)

(** {1 Counters}

    Numbers are represented by ranks, as in the Theorem 3.1 proof: the
    counter value [i] is any non-empty relation of rank [i], canonically
    [truth↑…↑]. *)

val counter_zero : int -> Ql_ast.program
(** [Y ← truth]. *)

val counter_incr : int -> Ql_ast.program
(** [Y ← Y↑]. *)

val counter_decr : int -> Ql_ast.program
(** [Y ← Y↓]. *)

val counter_add_const : int -> int -> Ql_ast.program
(** [counter_add_const y k]: increment [Y_y] k times. *)
