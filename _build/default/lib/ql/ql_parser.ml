exception Error of string

type token =
  | TE
  | TREL of int
  | TVAR of int
  | TAMP
  | TTILDE
  | TUP
  | TDOWN
  | TSWAP
  | TLPAR
  | TRPAR
  | TASSIGN
  | TSEMI
  | TWHILE
  | TDO
  | TLBRACE
  | TRBRACE
  | TPIPE
  | TEQ
  | TLT
  | TNUM of int
  | TINF
  | TEOF

let fail pos msg = raise (Error (Printf.sprintf "at offset %d: %s" pos msg))

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  let is_digit c = c >= '0' && c <= '9' in
  let read_num () =
    let start = !i in
    while !i < n && is_digit s.[!i] do incr i done;
    int_of_string (String.sub s start (!i - start))
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '&' then (push TAMP; incr i)
    else if c = '~' then (push TTILDE; incr i)
    else if c = '^' then (push TUP; incr i)
    else if c = '%' then (push TSWAP; incr i)
    else if c = '(' then (push TLPAR; incr i)
    else if c = ')' then (push TRPAR; incr i)
    else if c = ';' then (push TSEMI; incr i)
    else if c = '{' then (push TLBRACE; incr i)
    else if c = '}' then (push TRBRACE; incr i)
    else if c = '|' then (push TPIPE; incr i)
    else if c = '=' then (push TEQ; incr i)
    else if c = '<' then
      if !i + 1 < n && s.[!i + 1] = '-' then (push TASSIGN; i := !i + 2)
      else (push TLT; incr i)
    else if is_digit c then push (TNUM (read_num ()))
    else if c = 'E' then (push TE; incr i)
    else if c = '!' then (push TDOWN; incr i)
    else begin
      (* keywords and indexed names *)
      let start = !i in
      while
        !i < n
        && ((s.[!i] >= 'a' && s.[!i] <= 'z') || (s.[!i] >= 'A' && s.[!i] <= 'Z'))
      do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      match word with
      | "while" -> push TWHILE
      | "do" -> push TDO
      | "inf" -> push TINF
      | "Rel" ->
          if !i < n && is_digit s.[!i] then push (TREL (read_num () - 1))
          else fail !i "expected a relation number after Rel"
      | "Y" ->
          if !i < n && is_digit s.[!i] then push (TVAR (read_num () - 1))
          else fail !i "expected a variable number after Y"
      | "" -> fail !i (Printf.sprintf "unexpected character %C" c)
      | w -> fail start (Printf.sprintf "unexpected word %S" w)
    end
  done;
  push TEOF;
  Array.of_list (List.rev !toks)

type state = { toks : token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1
let expect st t msg = if peek st = t then advance st else fail st.pos msg

(* Term parsing: postfix binds tightest, then prefix complement,
   then left-associative intersection. *)
let rec parse_term st =
  let rec loop acc =
    if peek st = TAMP then begin
      advance st;
      loop (Ql_ast.Inter (acc, parse_unary st))
    end
    else acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | TTILDE ->
      advance st;
      Ql_ast.Comp (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop acc =
    match peek st with
    | TUP -> advance st; loop (Ql_ast.Up acc)
    | TDOWN -> advance st; loop (Ql_ast.Down acc)
    | TSWAP -> advance st; loop (Ql_ast.Swap acc)
    | _ -> acc
  in
  loop (parse_atom st)

and parse_atom st =
  match peek st with
  | TE -> advance st; Ql_ast.E
  | TREL i ->
      advance st;
      if i < 0 then fail st.pos "relation numbers start at 1";
      Ql_ast.Rel i
  | TVAR i ->
      advance st;
      if i < 0 then fail st.pos "variable numbers start at 1";
      Ql_ast.Var i
  | TLPAR ->
      advance st;
      let e = parse_term st in
      expect st TRPAR "expected ')'";
      e
  | _ -> fail st.pos "expected a term"

let rec parse_program st =
  let first = parse_statement st in
  if peek st = TSEMI then begin
    advance st;
    Ql_ast.Seq (first, parse_program st)
  end
  else first

and parse_statement st =
  match peek st with
  | TVAR i ->
      advance st;
      expect st TASSIGN "expected '<-'";
      Ql_ast.Assign (i, parse_term st)
  | TWHILE -> begin
      advance st;
      expect st TPIPE "expected '|'";
      let i =
        match peek st with
        | TVAR i -> advance st; i
        | _ -> fail st.pos "expected a variable"
      in
      expect st TPIPE "expected '|'";
      match peek st with
      | TEQ -> begin
          advance st;
          match peek st with
          | TNUM 0 ->
              advance st;
              Ql_ast.While_empty (i, parse_block st)
          | TNUM 1 ->
              advance st;
              Ql_ast.While_single (i, parse_block st)
          | _ -> fail st.pos "expected 0 or 1"
        end
      | TLT ->
          advance st;
          expect st TINF "expected 'inf'";
          Ql_ast.While_finite (i, parse_block st)
      | _ -> fail st.pos "expected '=' or '<'"
    end
  | _ -> fail st.pos "expected an assignment or while loop"

and parse_block st =
  expect st TDO "expected 'do'";
  expect st TLBRACE "expected '{'";
  let p = parse_program st in
  expect st TRBRACE "expected '}'";
  p

let term s =
  let st = { toks = tokenize s; pos = 0 } in
  let e = parse_term st in
  expect st TEOF "trailing input after term";
  e

let program s =
  let st = { toks = tokenize s; pos = 0 } in
  let p = parse_program st in
  expect st TEOF "trailing input after program";
  p

(* Printing in the parseable syntax.  Precedence: atoms/postfix (3),
   prefix ~ (2), & (1). *)
let rec print_term level e =
  let paren needed s = if needed then "(" ^ s ^ ")" else s in
  match e with
  | Ql_ast.E -> "E"
  | Ql_ast.Rel i -> Printf.sprintf "Rel%d" (i + 1)
  | Ql_ast.Var i -> Printf.sprintf "Y%d" (i + 1)
  | Ql_ast.Inter (a, b) ->
      paren (level > 1) (print_term 1 a ^ " & " ^ print_term 2 b)
  | Ql_ast.Comp a -> paren (level > 2) ("~" ^ print_term 2 a)
  | Ql_ast.Up a -> print_term 3 a ^ "^"
  | Ql_ast.Down a -> print_term 3 a ^ "!"
  | Ql_ast.Swap a -> print_term 3 a ^ "%"

let term_to_source e = print_term 0 e

let rec program_to_source = function
  | Ql_ast.Assign (i, e) ->
      Printf.sprintf "Y%d <- %s" (i + 1) (term_to_source e)
  | Ql_ast.Seq (p, q) -> program_to_source p ^ "; " ^ program_to_source q
  | Ql_ast.While_empty (i, p) ->
      Printf.sprintf "while |Y%d| = 0 do { %s }" (i + 1) (program_to_source p)
  | Ql_ast.While_single (i, p) ->
      Printf.sprintf "while |Y%d| = 1 do { %s }" (i + 1) (program_to_source p)
  | Ql_ast.While_finite (i, p) ->
      Printf.sprintf "while |Y%d| < inf do { %s }" (i + 1) (program_to_source p)
