(** QL_hs — the paper's modification of QL for highly symmetric r-dbs
    (§3.3, Theorem 3.1).

    Programs act on the representation [C_B = (T_B, ≅_B, C₁, ..., C_k)]:
    term values are finite sets of representatives of [≅_B]-classes of a
    common rank, all labelling paths of [T_B].  The operators follow the
    paper's semantics exactly:

    {ul
    {- [E] is [T² ∩ {(a,a) | a ∈ D}];}
    {- [Relᵢ] contains the input [Cᵢ];}
    {- [e↑ = {ud | u ∈ e, ud ∈ T^{n+1}}] (offspring in the tree);}
    {- [e↓] is the set of paths of [T^{n-1}] equivalent to tuples
       obtained by projecting out the first coordinate;}
    {- [e~] is the set of paths equivalent to tuples with the two
       rightmost coordinates exchanged;}
    {- [¬e = Tⁿ − e]; [∩] is set intersection;}
    {- the tests [|Y| = 0?] and [|Y| = 1?] count representatives.}} *)

type value = { rank : int; reps : Prelude.Tupleset.t }

val empty : value

val algebra : Hs.Hsdb.t -> value Ql_interp.algebra
(** The QL_hs operations over a represented hs-r-db. *)

val run : Hs.Hsdb.t -> fuel:int -> Ql_ast.program -> value Ql_interp.outcome

val eval_term : Hs.Hsdb.t -> Ql_ast.term -> value
(** Evaluate a closed term (variables read as empty). *)

val denotation : Hs.Hsdb.t -> value -> cutoff:int -> Prelude.Tupleset.t
(** The concrete relation denoted by a representative set, windowed to
    tuples over [{0, ..., cutoff-1}]: the union of the classes of its
    members.  Used to compare QL_hs against ground truth. *)

val equal_value : value -> value -> bool
(** Equality treating all empty values alike. *)

val of_reps : Hs.Hsdb.t -> rank:int -> Prelude.Tupleset.t -> value
(** Build a value from representative tuples (each is normalized to its
    tree representative). *)
