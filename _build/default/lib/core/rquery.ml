open Prelude

type outcome = Member | Nonmember | Diverges

type t =
  | Undefined_query
  | Defined of {
      name : string;
      db_type : int array;
      rank : int;
      decide : Rdb.Database.t -> Tuple.t -> bool;
    }

let make ?(name = "Q") ~db_type ~rank decide =
  Defined { name; db_type; rank; decide }

let run q b u =
  match q with
  | Undefined_query -> Diverges
  | Defined { rank; decide; _ } ->
      if Tuple.rank u <> rank then Nonmember
      else if decide b u then Member
      else Nonmember

let of_lgq lgq =
  match lgq with
  | Localiso.Lgq.Undefined -> Undefined_query
  | Localiso.Lgq.Classes { registry; selected } ->
      Defined
        {
          name = "lgq";
          db_type = Localiso.Classes.db_type registry;
          rank = Localiso.Classes.rank registry;
          decide =
            (fun b u -> selected.(Localiso.Classes.class_of registry b u));
        }

let classify registry q =
  match q with
  | Undefined_query -> Localiso.Lgq.undefined
  | Defined { decide; _ } ->
      Localiso.Lgq.of_pred registry (fun d ->
          let b, u = Localiso.Diagram.realize d in
          decide b u)

let locally_generic_on q samples =
  match q with
  | Undefined_query -> None
  | Defined { decide; _ } ->
      let rec scan = function
        | [] -> None
        | (b1, u) :: rest ->
            let conflict =
              List.find_opt
                (fun (b2, v) ->
                  Localiso.Liso.check b1 u b2 v && decide b1 u <> decide b2 v)
                rest
            in
            (match conflict with
            | Some (_, v) -> Some (u, v)
            | None -> scan rest)
      in
      scan samples
