open Prelude
open Localiso

type t = { n : int; registry : Classes.t; selected : bool array }

let window t = t.n
let rank t = Classes.rank t.registry

let of_lgq ~n lgq =
  if n <= 0 then invalid_arg "Lminus_n.of_lgq: empty window";
  match lgq with
  | Lgq.Undefined -> invalid_arg "Lminus_n.of_lgq: undefined query"
  | Lgq.Classes { registry; selected } ->
      { n; registry; selected = Array.copy selected }

let of_query ~n registry q =
  of_lgq ~n (Completeness.lgq_of_query registry q)

let to_query t =
  Completeness.query_of_lgq
    (Lgq.Classes { registry = t.registry; selected = t.selected })

let eval t b =
  Combinat.fold_cartesian
    (fun acc u ->
      if t.selected.(Classes.class_of t.registry b u) then
        Tupleset.add (Array.copy u) acc
      else acc)
    Tupleset.empty ~width:(rank t) ~bound:t.n

let classify ~n ~rank registry decide =
  if Classes.rank registry <> rank then
    invalid_arg "Lminus_n.classify: rank mismatch";
  let selected =
    Array.init (Classes.size registry) (fun i ->
        let d = Classes.diagram registry i in
        (* Classes needing more distinct elements than the window holds
           contribute no window tuples; leave them unselected. *)
        if Localiso.Diagram.blocks d > n then false
        else
          let b, u = Classes.realization registry i in
          decide b u)
  in
  { n; registry; selected }

let shift_database b ~shift =
  let rels =
    Array.map
      (fun r ->
        Rdb.Relation.make
          ~name:(Rdb.Relation.name r ^ "+shift")
          ~arity:(Rdb.Relation.arity r)
          (fun u ->
            Array.for_all (fun x -> x >= shift) u
            && Rdb.Relation.mem r (Array.map (fun x -> x - shift) u)))
      (Rdb.Database.relations b)
  in
  Rdb.Database.make ~name:(Rdb.Database.name b ^ "+shift") rels

let non_generic_witness t b ~shift =
  if shift <= 0 then invalid_arg "Lminus_n.non_generic_witness: shift <= 0";
  let before = eval t b in
  let after = eval t (shift_database b ~shift) in
  if Tupleset.equal before after then None else Some (before, after)
