(** Theorem 2.1 — L⁻ is r-complete — as algorithms, in both directions.

    {ul
    {- {e Expressibility} ({!formula_of_diagram}, {!query_of_lgq}): every
       locally generic query, given as a class set, is compiled to the L⁻
       formula [φᵢ₁ ∨ … ∨ φᵢₗ] of the proof, where [φᵢ] describes class
       [C^n_i] by the containment / non-containment of all projections.}
    {- {e Soundness} ({!lgq_of_query}): every L⁻ query is evaluated on the
       canonical realization of each class, recovering its class set —
       which also yields a normal form and a decision procedure for L⁻
       query equivalence.}} *)

module Diagram_vars : sig
  type t
  (** Variable names for the positions of a tuple. *)

  val of_names : string list -> t
  (** Position i of the tuple is named by the i-th name (names must be
      distinct). *)

  val default : rank:int -> t
  (** [x1 … xn]. *)

  val names : t -> string list
end

val var_names : int -> string list
(** The standard variable names [x1, ..., xn]. *)

val formula_of_diagram :
  Diagram_vars.t -> Localiso.Diagram.t -> Rlogic.Ast.formula
(** The class-describing formula φᵢ: equalities/inequalities fixing the
    equality pattern, then one (possibly negated) membership atom per
    relation and block vector. *)

val query_of_lgq : Localiso.Lgq.t -> Rlogic.Ast.query
(** The L⁻ expression for a locally generic query: [undefined] for the
    undefined query, otherwise the disjunction of its classes' formulas
    over variables [x1, ..., xn]. *)

val lgq_of_query : Localiso.Classes.t -> Rlogic.Ast.query -> Localiso.Lgq.t
(** The class set of an L⁻ query (quantifier-free; raises
    [Invalid_argument] otherwise): evaluate on each class's realization. *)

val normalize : Localiso.Classes.t -> Rlogic.Ast.query -> Rlogic.Ast.query
(** [query_of_lgq ∘ lgq_of_query] — the canonical normal form. *)

val equivalent :
  Localiso.Classes.t -> Rlogic.Ast.query -> Rlogic.Ast.query -> bool
(** Whether two L⁻ queries agree on all r-dbs of the registry's type —
    decidable because both reduce to finite class sets. *)

val roundtrip_holds : Localiso.Classes.t -> Localiso.Lgq.t -> bool
(** [lgq_of_query reg (query_of_lgq q) = q] — the completeness identity
    checked by tests and by experiment E3. *)
