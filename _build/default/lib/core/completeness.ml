open Prelude
open Localiso

module Diagram_vars = struct
  type t = string array

  let of_names names =
    let arr = Array.of_list names in
    let distinct = List.sort_uniq compare names in
    if List.length distinct <> Array.length arr then
      invalid_arg "Diagram_vars.of_names: duplicate names";
    arr

  let default ~rank = Array.init rank (fun i -> Printf.sprintf "x%d" (i + 1))
  let names t = Array.to_list t
end

let var_names n = Array.to_list (Diagram_vars.default ~rank:n)

let formula_of_diagram vars d =
  let n = Diagram.rank d in
  if Array.length vars <> n then
    invalid_arg "Completeness.formula_of_diagram: variable count mismatch";
  let pattern = (d : Diagram.t).pattern in
  let m = Diagram.blocks d in
  (* A representative position for each block: its first occurrence. *)
  let block_pos = Array.make m 0 in
  let filled = Array.make m false in
  Array.iteri
    (fun i blk ->
      if not filled.(blk) then begin
        filled.(blk) <- true;
        block_pos.(blk) <- i
      end)
    pattern;
  let equalities =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            let atom = Rlogic.Ast.Eq (vars.(i), vars.(j)) in
            if pattern.(i) = pattern.(j) then
              (* Only record the defining equality with the block's
                 representative position to keep formulas small. *)
              if j = block_pos.(pattern.(i)) && i <> j then Some atom else None
            else if i < j then Some (Rlogic.Ast.Not atom)
            else None)
          (Ints.range 0 n))
      (Ints.range 0 n)
  in
  let memberships =
    List.concat_map
      (fun rel ->
        let a = (d : Diagram.t).db_type.(rel) in
        List.map
          (fun w ->
            let w = Array.of_list w in
            let args = Array.map (fun blk -> vars.(block_pos.(blk))) w in
            let atom = Rlogic.Ast.Mem (rel, args) in
            if Diagram.atom d ~rel w then atom else Rlogic.Ast.Not atom)
          (Combinat.cartesian
             (List.init a (fun _ -> Ints.range 0 m))))
      (Ints.range 0 (Array.length (d : Diagram.t).db_type))
  in
  Rlogic.Ast.conj (equalities @ memberships)

let query_of_lgq = function
  | Lgq.Undefined -> Rlogic.Ast.Undefined
  | Lgq.Classes { registry; selected } ->
      let rank = Classes.rank registry in
      let vars = Diagram_vars.default ~rank in
      let disjuncts =
        Array.to_list selected
        |> List.mapi (fun i b -> (i, b))
        |> List.filter_map (fun (i, b) ->
               if b then
                 Some (formula_of_diagram vars (Classes.diagram registry i))
               else None)
      in
      Rlogic.Ast.Query
        { vars = Diagram_vars.names vars; body = Rlogic.Ast.disj disjuncts }

let lgq_of_query registry q =
  match q with
  | Rlogic.Ast.Undefined -> Lgq.undefined
  | Rlogic.Ast.Query { vars; body } ->
      if not (Rlogic.Ast.is_quantifier_free body) then
        invalid_arg "Completeness.lgq_of_query: not an L- query";
      if List.length vars <> Classes.rank registry then
        invalid_arg "Completeness.lgq_of_query: rank mismatch";
      Lgq.of_pred registry (fun d ->
          let b, u = Diagram.realize d in
          match Rlogic.Qf_eval.mem b q u with
          | Some answer -> answer
          | None -> assert false)

let normalize registry q = query_of_lgq (lgq_of_query registry q)

let equivalent registry q1 q2 =
  Lgq.equal (lgq_of_query registry q1) (lgq_of_query registry q2)

let roundtrip_holds registry lgq =
  match lgq with
  | Lgq.Undefined -> lgq_of_query registry (query_of_lgq lgq) = Lgq.Undefined
  | Lgq.Classes _ -> Lgq.equal (lgq_of_query registry (query_of_lgq lgq)) lgq
