lib/core/rquery.mli: Localiso Prelude Rdb
