lib/core/lminus_n.ml: Array Classes Combinat Completeness Lgq Localiso Prelude Rdb Tupleset
