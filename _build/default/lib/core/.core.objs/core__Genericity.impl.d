lib/core/genericity.ml: Array Combinat Database Hashtbl List Localiso Prelude Printf Rdb Relation Tuple
