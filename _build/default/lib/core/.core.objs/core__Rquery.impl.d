lib/core/rquery.ml: Array List Localiso Prelude Rdb Tuple
