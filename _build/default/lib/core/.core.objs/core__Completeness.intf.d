lib/core/completeness.mli: Localiso Rlogic
