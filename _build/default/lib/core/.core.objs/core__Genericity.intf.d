lib/core/genericity.mli: Prelude Rdb
