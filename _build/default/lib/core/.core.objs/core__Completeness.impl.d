lib/core/completeness.ml: Array Classes Combinat Diagram Ints Lgq List Localiso Prelude Printf Rlogic
