lib/core/lminus_n.mli: Localiso Prelude Rdb Rlogic
