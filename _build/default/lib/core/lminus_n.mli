(** The restricted languages of Propositions 2.6 and 2.7.

    [L⁻ₙ] is L⁻ applied to databases with domain ℕ, with results
    restricted to [{1, ..., n}] (we use [{0, ..., n-1}]): queries of the
    form [{(x₁, ..., xₘ) | φ(x̄, B) ∧ x̄ ∈ [n]^m}] with φ quantifier-free.
    Such queries are {e not} generic — shifting the database moves the
    answer out of the window, which is the paper's point — but they are
    generic {e for tuples over the window}, and Proposition 2.7 shows
    L⁻ₙ captures exactly the recursive functions with that property.

    Computationally, an L⁻ₙ query is a class-set query with a window:
    its (finite!) output on B is the set of window tuples whose
    [≅ₗ]-class is selected.  This module realizes both directions of the
    proposition the same way [Completeness] realizes Theorem 2.1. *)

type t
(** A semantic L⁻ₙ query: a window bound and a class set. *)

val window : t -> int
val rank : t -> int

val of_lgq : n:int -> Localiso.Lgq.t -> t
(** Restrict a locally generic query's output to the window [n].
    Raises [Invalid_argument] on the undefined query. *)

val of_query : n:int -> Localiso.Classes.t -> Rlogic.Ast.query -> t
(** Parse direction: the class set of a quantifier-free query, windowed
    (the [∧ x̄ ∈ [n]^m] conjunct is carried semantically). *)

val to_query : t -> Rlogic.Ast.query
(** Synthesis direction (Proposition 2.7's completeness): the L⁻ formula
    of the class set; together with {!window} this is the full L⁻ₙ
    expression. *)

val eval : t -> Rdb.Database.t -> Prelude.Tupleset.t
(** The {e finite} output relation over the window — total, no cutoff
    parameter needed, unlike unrestricted r-queries. *)

val classify :
  n:int ->
  rank:int ->
  Localiso.Classes.t ->
  (Rdb.Database.t -> Prelude.Tuple.t -> bool) ->
  t
(** Completeness direction: capture any decision procedure that is
    generic for window tuples (constant on [≅ₗ]-classes restricted to
    the window) by evaluating it on class realizations. *)

val non_generic_witness :
  t -> Rdb.Database.t -> shift:int -> (Prelude.Tupleset.t * Prelude.Tupleset.t) option
(** The paper's observation that L⁻ₙ queries are not generic: evaluate
    the query on [B] and on the isomorphic copy of [B] shifted by
    [shift]; returns the two (different) answers when the query output
    is non-empty, [None] when the outputs coincide. *)
