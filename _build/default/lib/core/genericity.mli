(** The Proposition 2.5 proof construction, executable.

    Given a recursive query [decide] (accessing its input only through the
    instrumented oracles) and a witness that it is {e not} locally generic
    — locally isomorphic pairs (B₁,u), (B₂,v) with different answers — we
    build the databases B₃ and B₄ of the proof from the logged computation
    paths, together with the explicit permutation that is an isomorphism
    B₃ ≅ B₄ taking u to v.  Replaying the query on B₃ and B₄ then yields
    different answers on isomorphic inputs: a mechanical refutation of
    genericity. *)

type certificate = {
  b3 : Rdb.Database.t;
  b4 : Rdb.Database.t;
  u : Prelude.Tuple.t;
  v : Prelude.Tuple.t;
  iso : int -> int;  (** the permutation of the proof, B₃ → B₄ *)
  support : int list;
      (** finite carrier on which [iso] moves elements and on which the
          relation contents of B₃/B₄ live *)
  answer3 : bool;
  answer4 : bool;  (** [answer3 <> answer4] in a valid certificate *)
}

val refute :
  decide:(Rdb.Database.t -> Prelude.Tuple.t -> bool) ->
  b1:Rdb.Database.t ->
  u:Prelude.Tuple.t ->
  b2:Rdb.Database.t ->
  v:Prelude.Tuple.t ->
  certificate option
(** [refute ~decide ~b1 ~u ~b2 ~v] returns a certificate when
    [(B₁,u) ≅ₗ (B₂,v)] yet [decide b1 u <> decide b2 v]; [None] when the
    precondition fails (equal answers, or not locally isomorphic). *)

val verify : certificate -> bool
(** Check the certificate: [iso] maps the B₃-restriction of every relation
    onto the B₄-restriction over the support, fixes [u ↦ v], and the two
    answers differ. *)
