open Prelude
open Rdb

type certificate = {
  b3 : Database.t;
  b4 : Database.t;
  u : Tuple.t;
  v : Tuple.t;
  iso : int -> int;
  support : int list;
  answer3 : bool;
  answer4 : bool;
}

(* A database whose relations log every oracle question. *)
let logged_db b =
  let getters = ref [] in
  let rels =
    Array.map
      (fun r ->
        let r', get = Relation.logged r in
        getters := get :: !getters;
        r')
      (Database.relations b)
  in
  let all_queries () =
    List.concat_map (fun get -> List.map fst (get ())) !getters
  in
  (Database.make ~name:(Database.name b) ~domain:(Database.domain b) rels,
   all_queries)

let observed_elements queries excluded =
  let seen = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace seen x ()) excluded;
  let out = ref [] in
  List.iter
    (Array.iter (fun x ->
         if not (Hashtbl.mem seen x) then begin
           Hashtbl.add seen x ();
           out := x :: !out
         end))
    queries;
  List.rev !out

let refute ~decide ~b1 ~u ~b2 ~v =
  if not (Localiso.Liso.check b1 u b2 v) then None
  else begin
    let b1', queries1 = logged_db b1 in
    let b2', queries2 = logged_db b2 in
    let answer1 = decide b1' u in
    let answer2 = decide b2' v in
    if answer1 = answer2 then None
    else begin
      let u_elems = Tuple.distinct_elements u in
      let v_elems = Tuple.distinct_elements v in
      let d_elems = observed_elements (queries1 ()) u_elems in
      let e_elems = observed_elements (queries2 ()) v_elems in
      let all_seen =
        u_elems @ v_elems @ d_elems @ e_elems
        @ List.concat_map Array.to_list (queries1 ())
        @ List.concat_map Array.to_list (queries2 ())
      in
      let base = 1 + List.fold_left max 0 all_seen in
      let e_fresh = List.mapi (fun i _ -> base + i) e_elems in
      let d_fresh =
        List.mapi (fun i _ -> base + List.length e_elems + i) d_elems
      in
      (* u.(i) ↦ v.(i) is well-defined because the equality patterns
         coincide (local isomorphism). *)
      let u_to_v = Hashtbl.create 8 and v_to_u = Hashtbl.create 8 in
      Array.iteri
        (fun i x ->
          Hashtbl.replace u_to_v x v.(i);
          Hashtbl.replace v_to_u v.(i) x)
        u;
      let table pairs =
        let h = Hashtbl.create 8 in
        List.iter (fun (a, b) -> Hashtbl.replace h a b) pairs;
        h
      in
      let e_fresh_to_e = table (List.combine e_fresh e_elems) in
      let d_fresh_to_d = table (List.combine d_fresh d_elems) in
      let d_to_d_fresh = table (List.combine d_elems d_fresh) in
      let member h x = Hashtbl.mem h x in
      let u_set = table (List.map (fun x -> (x, ())) u_elems) in
      let v_set = table (List.map (fun x -> (x, ())) v_elems) in
      let d_set = table (List.map (fun x -> (x, ())) d_elems) in
      let e_set = table (List.map (fun x -> (x, ())) e_elems) in
      let e_fresh_set = table (List.map (fun x -> (x, ())) e_fresh) in
      let d_fresh_set = table (List.map (fun x -> (x, ())) d_fresh) in
      let over sets x = Array.for_all (fun c -> List.exists (fun s -> member s c) sets) x in
      let translate tbl_special special_set other_map x =
        Array.map
          (fun c ->
            if member special_set c then Hashtbl.find tbl_special c
            else Hashtbl.find other_map c)
          x
      in
      let db_type = Database.db_type b1 in
      let s3 =
        Array.mapi
          (fun i a ->
            Relation.make ~name:(Printf.sprintf "S%d" (i + 1)) ~arity:a
              (fun x ->
                (over [ u_set; d_set ] x && Database.mem b1 i x)
                || (over [ u_set; e_fresh_set ] x
                   && Database.mem b2 i
                        (translate e_fresh_to_e e_fresh_set u_to_v x))))
          db_type
      in
      let s4 =
        Array.mapi
          (fun i a ->
            Relation.make ~name:(Printf.sprintf "S%d'" (i + 1)) ~arity:a
              (fun x ->
                (over [ v_set; e_set ] x && Database.mem b2 i x)
                || (over [ v_set; d_fresh_set ] x
                   && Database.mem b1 i
                        (translate d_fresh_to_d d_fresh_set v_to_u x))))
          db_type
      in
      let b3 = Database.make ~name:"B3" s3 in
      let b4 = Database.make ~name:"B4" s4 in
      let iso x =
        if member u_set x then Hashtbl.find u_to_v x
        else if member d_set x then Hashtbl.find d_to_d_fresh x
        else if member e_fresh_set x then Hashtbl.find e_fresh_to_e x
        else x
      in
      let support = u_elems @ d_elems @ e_fresh in
      let answer3 = decide b3 u in
      let answer4 = decide b4 v in
      Some { b3; b4; u; v; iso; support; answer3; answer4 }
    end
  end

let verify cert =
  let { b3; b4; u; v; iso; support; answer3; answer4 } = cert in
  answer3 <> answer4
  && Array.length u = Array.length v
  && Array.for_all2 (fun x y -> iso x = y) u v
  &&
  let support = Array.of_list support in
  let n = Array.length support in
  let db_type = Database.db_type b3 in
  let ok = ref true in
  Array.iteri
    (fun i a ->
      if !ok then
        ok :=
          Combinat.fold_cartesian
            (fun acc js ->
              let x = Array.map (fun j -> support.(j)) js in
              acc && Database.mem b3 i x = Database.mem b4 i (Array.map iso x))
            true ~width:a ~bound:n)
    db_type;
  !ok
