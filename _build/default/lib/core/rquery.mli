(** Computable r-queries (Definitions 2.3–2.6) as black boxes.

    A recursive r-query is given by a decision procedure that may access
    the input database only through its instrumented membership oracles
    (Definition 2.4).  [Diverges] stands for non-halting behaviour — our
    executable rendering keeps everything total by making divergence an
    explicit outcome. *)

type outcome = Member | Nonmember | Diverges

type t =
  | Undefined_query  (** the everywhere-undefined r-query *)
  | Defined of {
      name : string;
      db_type : int array;
      rank : int;
      decide : Rdb.Database.t -> Prelude.Tuple.t -> bool;
    }

val make :
  ?name:string ->
  db_type:int array ->
  rank:int ->
  (Rdb.Database.t -> Prelude.Tuple.t -> bool) ->
  t

val run : t -> Rdb.Database.t -> Prelude.Tuple.t -> outcome
(** Apply the query; [Undefined_query] yields [Diverges] on every input
    (Proposition 2.3(1): undefined queries are undefined for {e all} B). *)

val of_lgq : Localiso.Lgq.t -> t
(** The computable query denoted by a locally generic class-set query —
    its decision procedure computes the input pair's diagram and looks it
    up (finitely many oracle calls). *)

val classify : Localiso.Classes.t -> t -> Localiso.Lgq.t
(** Determine the class set of a query {e assumed} computable (hence, by
    Proposition 2.5, locally generic): evaluate it on the canonical
    realization of each class.  This is the semantic heart of the
    completeness proof — a computable query is exactly its class set. *)

val locally_generic_on :
  t -> (Rdb.Database.t * Prelude.Tuple.t) list -> (Prelude.Tuple.t * Prelude.Tuple.t) option
(** Sample-based local-genericity check: search the given pairs for two
    locally isomorphic pairs on which the query answers differently.
    [None] means no violation was found among the samples; [Some (u, v)]
    returns a witness (the §2 ∃-query fails this on the paper's B₁/B₂
    example). *)
