open Prelude

let express_unary db ~rank ~window pred =
  let db_type = Rdb.Database.db_type db in
  if not (Array.for_all (fun a -> a <= 1) db_type) then
    invalid_arg "Bp.express_unary: database is not unary";
  (* Find one witness per realized ≅ₗ-class among window tuples. *)
  let registry = Localiso.Classes.make ~db_type ~rank () in
  let witnesses = Array.make (Localiso.Classes.size registry) None in
  Combinat.fold_cartesian
    (fun () u ->
      let i = Localiso.Classes.class_of registry db u in
      if witnesses.(i) = None then witnesses.(i) <- Some (Array.copy u))
    () ~width:rank ~bound:window;
  let vars = Core.Completeness.Diagram_vars.default ~rank in
  let disjuncts =
    Array.to_list witnesses
    |> List.mapi (fun i w -> (i, w))
    |> List.filter_map (fun (i, w) ->
           match w with
           | Some u when pred u ->
               Some
                 (Core.Completeness.formula_of_diagram vars
                    (Localiso.Classes.diagram registry i))
           | _ -> None)
  in
  Rlogic.Ast.Query
    {
      vars = Core.Completeness.Diagram_vars.names vars;
      body = Rlogic.Ast.disj disjuncts;
    }

let express_hs t ~rank pred =
  let r0 = Hs.Ef.r0 t ~n:rank in
  let selected = List.filter pred (Hs.Hsdb.paths t rank) in
  let disjuncts =
    List.map (fun p -> Hs.Hintikka.formula t ~path:p ~r:r0) selected
  in
  let vars = List.init rank (fun i -> Printf.sprintf "x%d" (i + 1)) in
  Rlogic.Ast.Query { vars; body = Rlogic.Ast.disj disjuncts }

let preserves_automorphisms_hs t ~rank ~window pred =
  Combinat.fold_cartesian
    (fun acc u ->
      acc && pred (Array.copy u) = pred (Hs.Hsdb.representative t u))
    true ~width:rank ~bound:window
