lib/bp/bp.mli: Hs Prelude Rdb Rlogic
