lib/bp/gadget.mli: Rdb
