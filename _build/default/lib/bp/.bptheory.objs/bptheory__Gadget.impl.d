lib/bp/gadget.ml: Combinat Hashtbl List Prelude Rdb Tupleset
