lib/bp/bp.ml: Array Combinat Core Hs List Localiso Prelude Printf Rdb Rlogic
