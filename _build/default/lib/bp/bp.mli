(** BP-completeness (§6): expressing {e relations} that preserve the
    automorphisms of a fixed database, rather than queries.

    {ul
    {- Theorem 6.2: for unary r-dbs, [≅_B] coincides with [≅ₗ]
       (Proposition 6.1), so every recursive automorphism-preserving
       relation is a union of local-isomorphism classes and L⁻
       expresses it.}
    {- Theorem 6.3: over a highly symmetric r-db, first-order logic L is
       BP-complete; the synthesis direction builds a disjunction of
       depth-r₀ Hintikka formulas of the selected representatives.}} *)

val express_unary :
  Rdb.Database.t ->
  rank:int ->
  window:int ->
  (Prelude.Tuple.t -> bool) ->
  Rlogic.Ast.query
(** Theorem 6.2 synthesis.  [window] bounds the scan that discovers
    which [≅ₗ]-classes are realized in B (a realized class's least
    witness must lie in the window).  The relation predicate is
    evaluated on one witness per realized class; the result is the
    disjunction of those classes' describing formulas.  Requires B
    unary (all arities ≤ 1). *)

val express_hs :
  Hs.Hsdb.t -> rank:int -> (Prelude.Tuple.t -> bool) -> Rlogic.Ast.query
(** Theorem 6.3 synthesis: evaluate the relation on each representative
    in [Tⁿ] and return [⋁ φ^{r₀}_p] over the selected [p], with [r₀]
    from Proposition 3.6.  Evaluate the result with [Hs.Fo_eval]. *)

val preserves_automorphisms_hs :
  Hs.Hsdb.t -> rank:int -> window:int -> (Prelude.Tuple.t -> bool) -> bool
(** Sample check that a relation predicate is constant on [≅_B]-classes:
    every window tuple must agree with its representative. *)
