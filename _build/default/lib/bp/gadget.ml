open Prelude

type graph = { vertices : int list; edges : (int * int) list }

type t = {
  db : Rdb.Database.t;
  a : int;
  b : int;
  c : int;
  g1_vertices : int list;
  g2_vertices : int list;
}

let relabel g offset =
  let table = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace table v (offset + i)) g.vertices;
  let f v = Hashtbl.find table v in
  ( List.map f g.vertices,
    List.map (fun (x, y) -> (f x, f y)) g.edges )

let build ~g1 ~g2 =
  let a = 0 and b = 1 and c = 2 in
  let v1, e1 = relabel g1 3 in
  let v2, e2 = relabel g2 (3 + List.length v1) in
  let sym edges = List.concat_map (fun (x, y) -> [ [ x; y ]; [ y; x ] ]) edges in
  let r2 =
    sym e1 @ sym e2
    @ sym [ (a, b); (a, c) ]
    @ sym (List.map (fun v -> (b, v)) v1)
    @ sym (List.map (fun u -> (c, u)) v2)
  in
  let db =
    Rdb.Database.make ~name:"gadget"
      [|
        Rdb.Relation.of_tupleset ~name:"R1" ~arity:1
          (Tupleset.singleton [| a |]);
        Rdb.Relation.of_tupleset ~name:"R2" ~arity:2 (Tupleset.of_lists r2);
      |]
  in
  { db; a; b; c; g1_vertices = v1; g2_vertices = v2 }

(* Edge test inside the gadget. *)
let adj t x y = Rdb.Database.mem t.db 1 [| x; y |]

let bijections_preserving t v1 v2 =
  if List.length v1 <> List.length v2 then []
  else
    Combinat.permutations v2
    |> List.filter_map (fun image ->
           let pairs = List.combine v1 image in
           let f x = List.assoc x pairs in
           let preserves =
             List.for_all
               (fun x ->
                 List.for_all (fun y -> adj t x y = adj t (f x) (f y)) v1)
               v1
           in
           if preserves then Some pairs else None)

let b_equiv_c t =
  bijections_preserving t t.g1_vertices t.g2_vertices <> []

let graphs_isomorphic g1 g2 =
  if List.length g1.vertices <> List.length g2.vertices then false
  else begin
    let adj_of g =
      let s =
        List.concat_map (fun (x, y) -> [ (x, y); (y, x) ]) g.edges
      in
      fun x y -> List.mem (x, y) s
    in
    let adj1 = adj_of g1 and adj2 = adj_of g2 in
    Combinat.permutations g2.vertices
    |> List.exists (fun image ->
           let pairs = List.combine g1.vertices image in
           let f x = List.assoc x pairs in
           List.for_all
             (fun x ->
               List.for_all
                 (fun y -> adj1 x y = adj2 (f x) (f y))
                 g1.vertices)
             g1.vertices)
  end

let separating_relation t =
  Rdb.Relation.of_tupleset ~name:"IS_B" ~arity:1 (Tupleset.singleton [| t.b |])

(* All automorphisms of the gadget restricted to its support, exploiting
   the forced structure: a is fixed; {b, c} maps to itself; the graph
   copies follow. *)
let support_automorphisms t =
  let id_pairs vs = List.map (fun v -> (v, v)) vs in
  let keep_bc =
    let s1 = bijections_preserving t t.g1_vertices t.g1_vertices in
    let s2 = bijections_preserving t t.g2_vertices t.g2_vertices in
    List.concat_map
      (fun p1 ->
        List.map
          (fun p2 ->
            ((t.a, t.a) :: (t.b, t.b) :: (t.c, t.c) :: p1) @ p2)
          s2)
      s1
  in
  let swap_bc =
    let fwd = bijections_preserving t t.g1_vertices t.g2_vertices in
    let bwd = bijections_preserving t t.g2_vertices t.g1_vertices in
    List.concat_map
      (fun f ->
        List.map
          (fun g -> ((t.a, t.a) :: (t.b, t.c) :: (t.c, t.b) :: f) @ g)
          bwd)
      fwd
  in
  ignore id_pairs;
  keep_bc @ swap_bc

let preserves_automorphisms t rel =
  let support =
    t.a :: t.b :: t.c :: (t.g1_vertices @ t.g2_vertices)
  in
  List.for_all
    (fun pairs ->
      List.for_all
        (fun x ->
          Rdb.Relation.mem rel [| x |]
          = Rdb.Relation.mem rel [| List.assoc x pairs |])
        support)
    (support_automorphisms t)
