(** The Theorem 6.1 reduction gadget.

    Given two graphs G₁ and G₂, build the r-db [B = (D, R₁, R₂)] with
    three fresh points a, b, c where [R₁ = {a}] and R₂ contains the
    edges of G₁ and G₂, the edges (a,b) and (a,c), and edges from b to
    every vertex of G₁ and from c to every vertex of G₂.  Then
    [b ≅_B c] iff [G₁ ≅ G₂], and [{b}] is a recursive relation that
    preserves B's automorphisms exactly when they are {e not} isomorphic
    — which is how the theorem refutes the existence of an effective
    BP-r-complete language.

    Graphs are finite here (so the equivalence checks are total); the
    construction itself works verbatim for recursive graphs. *)

type graph = { vertices : int list; edges : (int * int) list }
(** Undirected: each listed edge stands for both directions. *)

type t = {
  db : Rdb.Database.t;  (** type (1, 2) *)
  a : int;
  b : int;
  c : int;
  g1_vertices : int list;  (** G₁'s vertices, as relabelled in D *)
  g2_vertices : int list;
}

val build : g1:graph -> g2:graph -> t
(** Vertices of the two graphs are relabelled apart; a, b, c are fresh. *)

val b_equiv_c : t -> bool
(** Whether some automorphism of B maps b to c — decided by the forced
    structure of the gadget: a must be fixed (it alone is in R₁), such
    an automorphism must swap b and c, and must hence map G₁'s relabelled
    copy isomorphically onto G₂'s.  Searches those bijections. *)

val graphs_isomorphic : graph -> graph -> bool
(** Independent brute-force graph-isomorphism check, used to validate
    the gadget: [b_equiv_c (build ~g1 ~g2) = graphs_isomorphic g1 g2]. *)

val separating_relation : t -> Rdb.Relation.t
(** The unary relation [{b}].  It is recursive; it preserves B's
    automorphisms iff [not (b_equiv_c t)]. *)

val preserves_automorphisms : t -> Rdb.Relation.t -> bool
(** Whether a unary relation is constant on the automorphism orbits of
    the (finite-support) gadget — brute-forced over the gadget's
    automorphisms. *)
