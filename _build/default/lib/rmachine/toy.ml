open Prelude

(* Each instruction becomes a natural number; a program becomes the
   base-3 number whose digits are the instructions' binary digits (0/1)
   separated by the digit 2. *)

let instr_code = function
  | Counter.Incr i -> (5 * i) + 0
  | Counter.Decr i -> (5 * i) + 1
  | Counter.Jz (i, a) -> (5 * Ints.cantor_pair i a) + 2
  | Counter.Jmp a -> (5 * a) + 3
  | Counter.Halt -> 4

let instr_of_code c =
  let arg = c / 5 in
  match c mod 5 with
  | 0 -> Counter.Incr arg
  | 1 -> Counter.Decr arg
  | 2 ->
      let i, a = Ints.cantor_unpair arg in
      Counter.Jz (i, a)
  | 3 -> Counter.Jmp arg
  | _ -> Counter.Halt

let encode (m : Counter.t) =
  let digit_chunks =
    Array.to_list m.Counter.code
    |> List.map (fun ins -> Ints.digits ~base:2 (instr_code ins))
  in
  let all_digits =
    match digit_chunks with
    | [] -> []
    | first :: rest ->
        first @ List.concat_map (fun chunk -> 2 :: chunk) rest
  in
  Ints.of_digits ~base:3 all_digits

let decode n =
  if n < 0 then invalid_arg "Toy.decode: negative code";
  let digits = Ints.digits ~base:3 n in
  let chunks =
    List.fold_right
      (fun d (current, done_chunks) ->
        if d = 2 then ([], current :: done_chunks)
        else (d :: current, done_chunks))
      digits ([], [])
    |> fun (last, chunks) -> last :: chunks
  in
  (* fold_right keeps chunk order consistent with digit order. *)
  let instrs =
    List.map (fun chunk -> instr_of_code (Ints.of_digits ~base:2 chunk)) chunks
  in
  let ncounters =
    1
    + List.fold_left
        (fun acc ins ->
          match ins with
          | Counter.Incr i | Counter.Decr i | Counter.Jz (i, _) -> max acc i
          | Counter.Jmp _ | Counter.Halt -> acc)
        0 instrs
  in
  Counter.make ~ncounters instrs

let halts_within ~x ~y ~z =
  Counter.halts_within (decode y) ~input:[ z ] ~steps:x

let halting_relation () =
  let r =
    Rdb.Relation.make ~name:"HALTSIN" ~arity:3 (fun u ->
        halts_within ~x:u.(0) ~y:u.(1) ~z:u.(2))
  in
  Rdb.Database.make ~name:"step-bounded-halting" [| r |]

let loop_code = encode Counter.busy_loop
let immediate_halt_code = encode (Counter.make ~ncounters:1 [ Counter.Halt ])
let slow_input_code =
  encode
    (Counter.make ~ncounters:1
       [ Counter.Jz (0, 3); Counter.Decr 0; Counter.Jmp 0 ])
