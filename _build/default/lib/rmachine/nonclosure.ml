(* The slow machine: on input z, loop z times, then halt by jumping
   past the end.  Running time 3z + O(1). *)
let slow_machine_code = Toy.slow_input_code

(* An infinite family of non-halting machines with growing codes: the
   suffix after the self-loop is unreachable padding. *)
let loop_machine_code j =
  Toy.encode (Counter.make ~ncounters:(j + 1) [ Counter.Jmp 0; Counter.Incr j ])

type witness = {
  halting : int * int;
  looping : int * int;
  halt_steps : int;
}

let find () =
  let y1 = slow_machine_code in
  (* z1 must be a non-halting code in the open window
     ((y1-2)/3, 3·y1 + 1), distinct from y1, so that every atom over
     {y1, z1} is false. *)
  let lo = (y1 - 2) / 3 and hi = (3 * y1) + 1 in
  let rec search j =
    let z1 = loop_machine_code j in
    if z1 > hi then
      failwith "Nonclosure.find: loop-code family skipped the window"
    else if z1 > lo && z1 <> y1 then z1
    else search (j + 1)
  in
  let z1 = search 0 in
  let halt_steps = (3 * z1) + 4 in
  let y2 = loop_machine_code 0 and z2 = loop_machine_code 1 in
  { halting = (y1, z1); looping = (y2, z2); halt_steps }

let verify w =
  let y1, z1 = w.halting and y2, z2 = w.looping in
  let db = Toy.halting_relation () in
  let atom_false (a, b, c) = not (Toy.halts_within ~x:a ~y:b ~z:c) in
  let all_atoms (y, z) =
    List.concat_map (fun a -> List.map (fun (b, c) -> (a, b, c)) [ (y, y); (y, z); (z, y); (z, z) ]) [ y; z ]
  in
  (* 1. same local isomorphism class *)
  Localiso.Liso.check_same db [| y1; z1 |] [| y2; z2 |]
  (* 2. all eight atoms false on both sides (redundant with 1 plus 3,
        but checked directly) *)
  && List.for_all atom_false (all_atoms (y1, z1))
  && List.for_all atom_false (all_atoms (y2, z2))
  (* 3. the halting pair is in the projection *)
  && Toy.halts_within ~x:w.halt_steps ~y:y1 ~z:z1
  (* 4. the looping pair stays out for a wide margin of bounds *)
  && not (Toy.halts_within ~x:(10 * w.halt_steps) ~y:y2 ~z:z2)
