lib/rmachine/oracle_rm.mli: Prelude Rdb
