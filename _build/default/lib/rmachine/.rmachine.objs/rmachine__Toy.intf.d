lib/rmachine/toy.mli: Counter Rdb
