lib/rmachine/toy.ml: Array Counter Ints List Prelude Rdb
