lib/rmachine/counter.ml: Array Format List
