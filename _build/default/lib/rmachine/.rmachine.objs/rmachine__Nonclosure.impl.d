lib/rmachine/nonclosure.ml: Counter List Localiso Toy
