lib/rmachine/oracle_rm.ml: Array Fun List Rdb
