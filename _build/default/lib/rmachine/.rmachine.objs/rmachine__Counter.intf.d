lib/rmachine/counter.mli: Format
