lib/rmachine/nonclosure.mli:
