(** Counter machines.

    Two roles in the reproduction: they are the effective machine class
    behind the §1 non-closure example (via the Gödel numbering in
    {!Toy}), and they witness the "QL_hs has the power of general
    counter machines" step in the Theorem 3.1 proof — the counter
    operations of [Ql.Ql_macros] mirror exactly this instruction set. *)

type instr =
  | Incr of int  (** increment counter i *)
  | Decr of int  (** decrement counter i (floor at 0) *)
  | Jz of int * int  (** jump to address if counter i is zero *)
  | Jmp of int  (** unconditional jump *)
  | Halt

type t = { ncounters : int; code : instr array }

val make : ncounters:int -> instr list -> t
(** Validates counter indices; jump targets may point anywhere ≥ 0
    (a target past the end halts). *)

type outcome = Halted of int array  (** final counters *) | Out_of_fuel

val run : t -> input:int list -> fuel:int -> outcome
(** Execute from instruction 0 with the input loaded into the first
    counters (the rest 0); [fuel] bounds executed instructions. *)

val halts_within : t -> input:int list -> steps:int -> bool
(** Whether the machine halts in at most [steps] instructions — the
    primitive-recursive predicate inside the halting relation. *)

val addition : t
(** Counters (a, b) ↦ a + b in counter 0. *)

val busy_loop : t
(** Never halts. *)

val halt_after : int -> t
(** A machine that halts after roughly [k] steps regardless of input. *)

val pp : Format.formatter -> t -> unit
