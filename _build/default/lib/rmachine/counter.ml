type instr = Incr of int | Decr of int | Jz of int * int | Jmp of int | Halt

type t = { ncounters : int; code : instr array }

let make ~ncounters instrs =
  if ncounters <= 0 then invalid_arg "Counter.make: no counters";
  let check_counter i =
    if i < 0 || i >= ncounters then
      invalid_arg "Counter.make: counter index out of range"
  in
  let check_target a =
    if a < 0 then invalid_arg "Counter.make: negative jump target"
  in
  List.iter
    (function
      | Incr i | Decr i -> check_counter i
      | Jz (i, a) ->
          check_counter i;
          check_target a
      | Jmp a -> check_target a
      | Halt -> ())
    instrs;
  { ncounters; code = Array.of_list instrs }

type outcome = Halted of int array | Out_of_fuel

let run t ~input ~fuel =
  let counters = Array.make t.ncounters 0 in
  List.iteri (fun i x -> if i < t.ncounters then counters.(i) <- x) input;
  let rec step pc fuel =
    if fuel <= 0 then Out_of_fuel
    else if pc < 0 || pc >= Array.length t.code then Halted counters
    else
      match t.code.(pc) with
      | Halt -> Halted counters
      | Incr i ->
          counters.(i) <- counters.(i) + 1;
          step (pc + 1) (fuel - 1)
      | Decr i ->
          counters.(i) <- max 0 (counters.(i) - 1);
          step (pc + 1) (fuel - 1)
      | Jz (i, a) ->
          if counters.(i) = 0 then step a (fuel - 1) else step (pc + 1) (fuel - 1)
      | Jmp a -> step a (fuel - 1)
  in
  step 0 fuel

let halts_within t ~input ~steps =
  match run t ~input ~fuel:steps with Halted _ -> true | Out_of_fuel -> false

let addition =
  (* while c1 <> 0 do (decr c1; incr c0) *)
  make ~ncounters:2
    [ Jz (1, 4); Decr 1; Incr 0; Jmp 0; Halt ]

let busy_loop = make ~ncounters:1 [ Jmp 0 ]

let halt_after k =
  if k < 0 then invalid_arg "Counter.halt_after: negative";
  (* Load k into counter 0 by k increments, then count it down. *)
  let load = List.init k (fun _ -> Incr 0) in
  make ~ncounters:1 (load @ [ Jz (0, max 0 (k + 4)); Decr 0; Jmp k ])

let pp_instr ppf = function
  | Incr i -> Format.fprintf ppf "inc c%d" i
  | Decr i -> Format.fprintf ppf "dec c%d" i
  | Jz (i, a) -> Format.fprintf ppf "jz c%d -> %d" i a
  | Jmp a -> Format.fprintf ppf "jmp %d" a
  | Halt -> Format.pp_print_string ppf "halt"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri (fun i ins -> Format.fprintf ppf "%2d: %a@," i pp_instr ins) t.code;
  Format.fprintf ppf "@]"
