type instr =
  | Inc of int
  | Dec of int
  | Jz of int * int
  | Jmp of int
  | Query of { rel : int; regs : int array; jump_if_member : int }
  | Accept
  | Reject

type t = { nregs : int; code : instr array }

let make ~nregs instrs =
  if nregs <= 0 then invalid_arg "Oracle_rm.make: no registers";
  let check_reg r =
    if r < 0 || r >= nregs then
      invalid_arg "Oracle_rm.make: register index out of range"
  in
  List.iter
    (function
      | Inc r | Dec r -> check_reg r
      | Jz (r, _) -> check_reg r
      | Jmp _ | Accept | Reject -> ()
      | Query { regs; _ } -> Array.iter check_reg regs)
    instrs;
  { nregs; code = Array.of_list instrs }

type outcome = Accepted | Rejected | Out_of_fuel

let run t ~db ~input ~fuel =
  let regs = Array.make t.nregs 0 in
  Array.iteri (fun i x -> if i < t.nregs then regs.(i) <- x) input;
  let rec step pc fuel =
    if fuel <= 0 then Out_of_fuel
    else if pc < 0 || pc >= Array.length t.code then Rejected
    else
      match t.code.(pc) with
      | Accept -> Accepted
      | Reject -> Rejected
      | Inc r ->
          regs.(r) <- regs.(r) + 1;
          step (pc + 1) (fuel - 1)
      | Dec r ->
          regs.(r) <- max 0 (regs.(r) - 1);
          step (pc + 1) (fuel - 1)
      | Jz (r, a) ->
          if regs.(r) = 0 then step a (fuel - 1) else step (pc + 1) (fuel - 1)
      | Jmp a -> step a (fuel - 1)
      | Query { rel; regs = rs; jump_if_member } ->
          let u = Array.map (fun r -> regs.(r)) rs in
          if Rdb.Database.mem db rel u then step jump_if_member (fuel - 1)
          else step (pc + 1) (fuel - 1)
  in
  step 0 fuel

let decider t ~fuel db u =
  match run t ~db ~input:u ~fuel with
  | Accepted -> true
  | Rejected | Out_of_fuel -> false

let member_of ~rel ~arity =
  make ~nregs:(max 1 arity)
    [
      Query { rel; regs = Array.init arity Fun.id; jump_if_member = 2 };
      Reject;
      Accept;
    ]

let exists_forward_edge =
  (* Registers: r0 = x (input), r1 = y (search counter),
     r2 = max 0 (x - y), r3 = start-up scratch, then an "y > x" flag.
     x = y exactly when r2 = 0 and the flag r3 = 0.
     For y = 0, 1, 2, …: if (x, y) ∈ R and x ≠ y, accept; else y++.
     Diverges (runs out of fuel) when no forward edge exists, like the
     paper's machine on B₂. *)
  make ~nregs:4
    [
      (* 0–4: r2 := x, moving x through r3 *)
      Jz (0, 5);
      Dec 0;
      Inc 2;
      Inc 3;
      Jmp 0;
      (* 5–8: restore x from r3 (leaving the flag r3 = 0) *)
      Jz (3, 9);
      Dec 3;
      Inc 0;
      Jmp 5;
      (* 9: the oracle question "is (x, y) ∈ R?" *)
      Query { rel = 0; regs = [| 0; 1 |]; jump_if_member = 16 };
      (* 10–15: y := y + 1, maintaining r2 and the flag *)
      Jz (2, 13);
      Dec 2;
      Jmp 14;
      Inc 3;
      Inc 1;
      Jmp 9;
      (* 16–20: edge found — accept iff x ≠ y (r2 ≠ 0 or flag ≠ 0) *)
      Jz (2, 18);
      Accept;
      Jz (3, 20);
      Accept;
      Jmp 10;
    ]
