(** A Gödel numbering of counter machines, and the step-bounded halting
    relation of the paper's §1 non-closure example:

    "the primitive recursive relation R, such that R(x, y, z) holds for
    a 3-tuple of natural numbers iff the y-th Turing machine halts on
    input z after x steps"

    — with counter machines standing in for Turing machines (an
    effectively equivalent machine class; see DESIGN.md).  Every natural
    number decodes to some machine, so the numbering is total, and
    {!halting_relation} is a recursive database whose projection on
    (y, z) is the (toy) halting problem. *)

val encode : Counter.t -> int
(** Gödel number of a machine.  [decode (encode m)] has the same
    behaviour as [m]. *)

val decode : int -> Counter.t
(** Total: every natural is the code of some machine. *)

val halting_relation : unit -> Rdb.Database.t
(** The r-db of type (3) with
    [R = {(x, y, z) | machine y halts on input z within x steps}]. *)

val halts_within : x:int -> y:int -> z:int -> bool
(** The relation itself. *)

val loop_code : int
(** Code of a machine that never halts. *)

val immediate_halt_code : int
(** Code of a machine that halts at once. *)

val slow_input_code : int
(** Code of a 3-instruction machine whose running time on input z is
    3z + O(1): it halts on every input, but never within z steps.
    (Gödel codes live in 63-bit integers, so long programs do not
    encode — slowness must come from the input, not from program
    length; {!encode} raises [Invalid_argument] on overflow.) *)
