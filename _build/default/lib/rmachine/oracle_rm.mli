(** Oracle machines in the sense of Definition 2.4.

    The paper defines a recursive r-query by an oracle Turing machine
    that "uses oracles for the relations of the input data base B to
    decide whether u ∈ Q(B)", its only access to B being questions
    "is u ∈ R?".  We realize this with register machines extended by a
    [Query] instruction (an effectively equivalent model; see DESIGN.md):
    all database access goes through [Rdb.Database.mem], i.e. through the
    instrumented (and loggable) oracle interface — exactly the discipline
    the Proposition 2.5 construction exploits. *)

type instr =
  | Inc of int
  | Dec of int  (** floor at 0 *)
  | Jz of int * int  (** jump if register zero *)
  | Jmp of int
  | Query of { rel : int; regs : int array; jump_if_member : int }
      (** ask "is (r_{regs(0)}, …) ∈ Rel?"; jump on a positive answer *)
  | Accept
  | Reject

type t = { nregs : int; code : instr array }

val make : nregs:int -> instr list -> t

type outcome = Accepted | Rejected | Out_of_fuel

val run : t -> db:Rdb.Database.t -> input:int array -> fuel:int -> outcome
(** Execute with the input tuple loaded into the first registers.
    Falling off the end rejects. *)

val decider :
  t -> fuel:int -> Rdb.Database.t -> Prelude.Tuple.t -> bool
(** The r-query decision procedure computed by the machine
    ([Out_of_fuel] counts as rejection — callers choose fuel large
    enough for their instances). *)

val member_of : rel:int -> arity:int -> t
(** Accept iff the input tuple belongs to relation [rel]. *)

val exists_forward_edge : t
(** The §2 example query [{x | ∃y (x ≠ y ∧ (x, y) ∈ R)}] as an honest
    oracle machine over graphs: searches y = 0, 1, 2, … and accepts on
    the first hit (diverges — runs out of fuel — when there is none,
    like the paper's machine). *)
