(** The §1 non-closure phenomenon, made concrete (experiment E4).

    Let R be the step-bounded halting relation ({!Toy.halting_relation})
    and consider its projection [{(y, z) | ∃x R(x, y, z)}] — the (toy)
    halting set.  L⁻ cannot express it: by Theorem 2.1 every computable
    r-query is a union of [≅ₗ]-classes, and we exhibit two pairs in the
    {e same} class of which exactly one is in the projection.  The
    witness construction:

    {ul
    {- the "halting" pair ([y₁], [z₁]): [y₁] codes a machine whose
       running time on input z is ≈ 3z, and [z₁] codes a non-halting
       machine with [y₁/4 < z₁ < 3·y₁] — so every atom
       [R(a, b, c)] with [a, b, c ∈ {y₁, z₁}] is false (the step bounds
       on offer are always too small, or the machine consulted never
       halts), yet [∃x R(x, y₁, z₁)] holds;}
    {- the "looping" pair ([y₂], [z₂]): two distinct non-halting machine
       codes — all atoms false and the projection fails.}}

    Both pairs therefore have the same atomic diagram (all eight atoms
    false, two distinct components), i.e. they are locally isomorphic. *)

type witness = {
  halting : int * int;  (** (y₁, z₁): in the projection *)
  looping : int * int;  (** (y₂, z₂): not in the projection *)
  halt_steps : int;  (** an x with R(x, y₁, z₁) *)
}

val find : unit -> witness
(** Construct the witness (deterministic). *)

val verify : witness -> bool
(** Check everything: the two pairs are locally isomorphic over the
    halting relation, [R(halt_steps, y₁, z₁)] holds, and the looping
    side stays dead for a large margin of step bounds. *)

val slow_machine_code : int
(** The code [y₁] — a machine that halts on every input z after ≈ 3z
    steps (but after more than [max (y₁, z)] steps for the relevant
    range). *)

val loop_machine_code : int -> int
(** [loop_machine_code j]: the j-th member of an infinite family of
    pairwise distinct non-halting machine codes (monotone in [j]). *)
