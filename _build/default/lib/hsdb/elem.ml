open Prelude

let diagram_eq t1 u t2 v =
  Localiso.Diagram.equal
    (Localiso.Diagram.of_pair (Hsdb.db t1) u)
    (Localiso.Diagram.of_pair (Hsdb.db t2) v)

let rec game t1 t2 r u v =
  diagram_eq t1 u t2 v
  && (r = 0
     ||
     let cu = List.map (Tuple.append u) (Hsdb.children t1 u) in
     let cv = List.map (Tuple.append v) (Hsdb.children t2 v) in
     List.for_all
       (fun ua -> List.exists (fun vb -> game t1 t2 (r - 1) ua vb) cv)
       cu
     && List.for_all
          (fun vb -> List.exists (fun ua -> game t1 t2 (r - 1) ua vb) cu)
          cv)

let ef_game t1 t2 ~r =
  if Hsdb.db_type t1 <> Hsdb.db_type t2 then
    invalid_arg "Elem.ef_game: database types differ";
  game t1 t2 r Tuple.empty Tuple.empty

let ef_game_from t1 u t2 v ~r =
  if Hsdb.db_type t1 <> Hsdb.db_type t2 then
    invalid_arg "Elem.ef_game_from: database types differ";
  if not (Hsdb.is_path t1 u && Hsdb.is_path t2 v) then
    invalid_arg "Elem.ef_game_from: arguments must be tree paths";
  Tuple.rank u = Tuple.rank v && game t1 t2 r u v

let distinguishing_round ?(cap = 6) t1 t2 =
  let rec go r =
    if r > cap then None
    else if not (ef_game t1 t2 ~r) then Some r
    else go (r + 1)
  in
  go 0

let separating_sentence ?(cap = 6) t1 t2 =
  match distinguishing_round ~cap t1 t2 with
  | None -> None
  | Some r -> Some (Hintikka.sentence t1 ~r)

(* --- the Corollary 3.1 amalgam ------------------------------------- *)

(* Coding of D₃ = {a, b} ⊎ D₁ ⊎ D₂. *)
type side = A | B | Left of int | Right of int

let decode_side x =
  if x = 0 then A
  else if x = 1 then B
  else if x mod 2 = 0 then Left ((x - 2) / 2)
  else Right ((x - 3) / 2)

let encode_left x = (2 * x) + 2
let encode_right x = (2 * x) + 3

let amalgam ?(cross = None) t1 t2 =
  if Hsdb.db_type t1 <> Hsdb.db_type t2 then
    invalid_arg "Elem.amalgam: database types differ";
  let db_type = Hsdb.db_type t1 in
  let db1 = Hsdb.db t1 and db2 = Hsdb.db t2 in
  (* S_i = R_i ∪ R'_i on the re-coded domains. *)
  let s_rels =
    Array.mapi
      (fun i a ->
        Rdb.Relation.make ~name:(Printf.sprintf "S%d" (i + 1)) ~arity:a
          (fun u ->
            let sides = Array.map decode_side u in
            if Array.for_all (function Left _ -> true | _ -> false) sides
            then
              Rdb.Database.mem db1 i
                (Array.map (function Left x -> x | _ -> 0) sides)
            else if
              Array.for_all (function Right _ -> true | _ -> false) sides
            then
              Rdb.Database.mem db2 i
                (Array.map (function Right x -> x | _ -> 0) sides)
            else false))
      db_type
  in
  let e_rel =
    Rdb.Relation.make ~name:"E" ~arity:2 (fun u ->
        match (decode_side u.(0), decode_side u.(1)) with
        | A, Left _ -> true
        | B, Right _ -> true
        | _ -> false)
  in
  let db3 =
    Rdb.Database.make
      ~name:(Hsdb.name t1 ^ "+" ^ Hsdb.name t2 ^ "-amalgam")
      (Array.append s_rels [| e_rel |])
  in
  (* Projections of a mixed tuple onto each side. *)
  let project_side u keep =
    Array.to_list u
    |> List.filter_map (fun x ->
           match (decode_side x, keep) with
           | Left v, `L -> Some v
           | Right v, `R -> Some v
           | _ -> None)
    |> Array.of_list
  in
  (* The identity-style match: sides preserved.  Positions must agree on
     which side they live on, a/b fixed, and the per-side subtuples must
     be equivalent in their own structures. *)
  let match_keeping u v =
    let ok = ref true in
    Array.iteri
      (fun i x ->
        match (decode_side x, decode_side v.(i)) with
        | A, A | B, B -> ()
        | Left _, Left _ | Right _, Right _ -> ()
        | _ -> ok := false)
      u;
    !ok
    && Hsdb.equiv t1 (project_side u `L) (project_side v `L)
    && Hsdb.equiv t2 (project_side u `R) (project_side v `R)
  in
  (* The swap-style match (only when an isomorphism B₁ ≅ B₂ exists):
     a ↔ b, Left ↔ Right; the Left part of u must map to the Right part
     of v under some isomorphism B₁ → B₂ and vice versa. *)
  let match_swapping u v =
    match cross with
    | None -> false
    | Some cross_equiv ->
        let ok = ref true in
        Array.iteri
          (fun i x ->
            match (decode_side x, decode_side v.(i)) with
            | A, B | B, A -> ()
            | Left _, Right _ | Right _, Left _ -> ()
            | _ -> ok := false)
          u;
        !ok
        && cross_equiv (project_side u `L) (project_side v `R)
        && cross_equiv (project_side v `L) (project_side u `R)
  in
  let equiv u v =
    Prelude.Tuple.rank u = Prelude.Tuple.rank v
    && Prelude.Tuple.equality_pattern u = Prelude.Tuple.equality_pattern v
    && (match_keeping u v || match_swapping u v)
  in
  let children u =
    let left_path = project_side u `L and right_path = project_side u `R in
    let candidates =
      Prelude.Tuple.distinct_elements u
      @ [ 0; 1 ]
      @ List.map encode_left (Hsdb.children t1 left_path)
      @ List.map encode_right (Hsdb.children t2 right_path)
    in
    Hsdb.dedupe_extensions ~equiv u candidates
  in
  ( Hsdb.make
      ~name:(Hsdb.name t1 ^ "+" ^ Hsdb.name t2)
      ~db:db3 ~children ~equiv (),
    0,
    1 )
