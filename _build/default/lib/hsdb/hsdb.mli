(** Highly symmetric recursive databases (§3).

    An hs-r-db is represented exactly as in Definition 3.7, by
    [C_B = (T_B, ≅_B, C₁, ..., C_k)]:
    {ul
    {- [children] is the oracle for the characteristic tree [T_B]
       (Definition 3.3): given a node — identified with the tuple of
       labels leading to it, the root being the empty tuple — it returns
       the labels of the node's immediate offspring.  [T_B] is highly
       recursive: finitely branching with computable offspring;}
    {- [equiv] is the oracle for the recursive predicate [≅_B]
       (Definition 3.1): whether some automorphism of B takes [u] to
       [v];}
    {- the representative sets [Cᵢ] are derived from the tree and the
       underlying database: the paths of length [aᵢ] that belong to
       [Rᵢ].  (Each [Rᵢ] is a union of whole equivalence classes, so this
       determines [Rᵢ] completely: [u ∈ Rᵢ] iff [u ≅_B w] for some
       [w ∈ Cᵢ].)}}

    The underlying [Rdb.Database.t] is kept so tests can cross-check the
    representation against the raw recursive relations. *)

type t

val make :
  ?name:string ->
  db:Rdb.Database.t ->
  children:(Prelude.Tuple.t -> int list) ->
  equiv:(Prelude.Tuple.t -> Prelude.Tuple.t -> bool) ->
  unit ->
  t
(** Assemble a representation.  The [Cᵢ] sets are computed from the tree
    and the database's membership oracles. *)

val name : t -> string
val db : t -> Rdb.Database.t
val db_type : t -> int array

val children : t -> Prelude.Tuple.t -> int list
(** The [T_B] oracle (memoized). *)

val equiv : t -> Prelude.Tuple.t -> Prelude.Tuple.t -> bool
(** The [≅_B] oracle. *)

val paths : t -> int -> Prelude.Tuple.t list
(** [paths t n] is [Tⁿ], the set of paths of length [n] from the root
    (memoized).  [paths t 0 = [()]]. *)

val is_path : t -> Prelude.Tuple.t -> bool
(** Whether a tuple labels a root path of [T_B]. *)

val representative : t -> Prelude.Tuple.t -> Prelude.Tuple.t
(** The unique [v ∈ Tⁿ] with [u ≅_B v].  Raises [Not_found] if the tree
    does not cover [u]'s class (a representation bug — {!validate} finds
    those). *)

val reps : t -> int -> Prelude.Tupleset.t
(** [reps t i] is [Cᵢ] — representatives of the classes constituting
    [Rᵢ]. *)

val rel_mem : t -> int -> Prelude.Tuple.t -> bool
(** Membership in [Rᵢ] decided through the representation: [u ≅_B w] for
    some [w ∈ Cᵢ].  Must agree with the underlying database. *)

val class_count : t -> int -> int
(** Number of equivalence classes of rank [n] = |Tⁿ| — finite for every
    [n] because B is highly symmetric. *)

val dedupe_extensions :
  equiv:(Prelude.Tuple.t -> Prelude.Tuple.t -> bool) ->
  Prelude.Tuple.t ->
  int list ->
  int list
(** Helper for building [children] oracles: keep the first candidate
    label of each [≅]-class of the extended tuple [ua]. *)

val stretch : t -> by:Prelude.Tuple.t -> t
(** The stretching of B by the elements of a tree path [d] (§3.1): the
    database [(D, R₁, ..., R_k, {(d₁)}, ..., {(d_m)})].  Its tuple
    equivalence is [u ≅_B' v ⟺ du ≅_B dv], and its characteristic tree
    is the subtree of [T_B] under [d].  Requires [by] to be a path of
    [T_B]. *)

val oracle_calls : t -> int * int
(** Accounting for the Definition 3.9 oracle model: how many questions
    have been asked of the [T_B] oracle (children) and of the [≅_B]
    oracle (equiv) since creation or the last {!reset_oracle_calls}.
    Children answers are memoized — only genuine oracle questions are
    counted. *)

val reset_oracle_calls : t -> unit

val validate : ?max_rank:int -> ?window:int -> t -> string list
(** Sanity-check the representation; returns human-readable violations
    (empty list = consistent).  Checks, up to the given rank and domain
    window: tree paths are pairwise non-equivalent; every tuple over the
    window has a representative; [rel_mem] agrees with the underlying
    database; [equiv] is reflexive/symmetric on samples; equivalent
    tuples are locally isomorphic. *)

val pp_tree : ?max_rank:int -> Format.formatter -> t -> unit
(** Print the first levels of the characteristic tree. *)
