open Prelude

type point = { line : int; pos : int }
type structure = { nlines : int }

let adjacent _s p q = p.line = q.line && abs (p.pos - q.pos) = 1

let partial_iso pairs =
  let ok = ref true in
  List.iteri
    (fun i (a1, b1) ->
      List.iteri
        (fun j (a2, b2) ->
          if i < j then begin
            if (a1 = a2) <> (b1 = b2) then ok := false;
            if
              (a1.line = a2.line && abs (a1.pos - a2.pos) = 1)
              <> (b1.line = b2.line && abs (b1.pos - b2.pos) = 1)
            then ok := false
          end)
        pairs)
    pairs;
  !ok

(* The duplicator's classical response with threshold 2^k: mirror near
   moves by offset from the closest pebble on the same line; answer far
   moves with a fresh far point. *)
let respond ~src ~dst ~dst_nlines ~k x =
  let t = Ints.pow 2 k in
  let near =
    List.filter_map
      (fun (s, d) ->
        if s.line = x.line && abs (x.pos - s.pos) <= t then
          Some (abs (x.pos - s.pos), s, d)
        else None)
      (List.combine src dst)
  in
  match List.sort compare near with
  | (_, s, d) :: _ -> { line = d.line; pos = d.pos + (x.pos - s.pos) }
  | [] ->
      (* Far: prefer a pebble-free line; otherwise go far out on line 0. *)
      let used_lines = List.map (fun d -> d.line) dst in
      let free_line =
        List.find_opt
          (fun l -> not (List.mem l used_lines))
          (Ints.range 0 dst_nlines)
      in
      (match free_line with
      | Some l -> { line = l; pos = 0 }
      | None ->
          let maxpos =
            List.fold_left (fun acc d -> max acc (abs d.pos)) 0 dst
          in
          { line = 0; pos = maxpos + (4 * t) + 4 })

(* Spoiler candidate moves in a structure with the given pebbles:
   everything within radius 2^k + 2 of a pebble, plus one far point per
   line. *)
let spoiler_moves s pebbles ~k =
  let t = Ints.pow 2 k in
  let near =
    List.concat_map
      (fun p ->
        List.map (fun d -> { line = p.line; pos = p.pos + d })
          (Ints.range (-(t + 2)) (t + 3)))
      pebbles
  in
  let maxpos = List.fold_left (fun acc p -> max acc (abs p.pos)) 0 pebbles in
  let far =
    List.map
      (fun l -> { line = l; pos = maxpos + (4 * t) + 7 })
      (Ints.range 0 s.nlines)
  in
  List.sort_uniq compare (near @ far)

let strategy_wins ~a ~b ~r =
  if a.nlines < 1 || b.nlines < 1 then
    invalid_arg "Lines.strategy_wins: empty structure";
  (* pairs : (point in a, point in b) list *)
  let rec play pairs k =
    if k = 0 then partial_iso pairs
    else begin
      let src_a = List.map fst pairs and src_b = List.map snd pairs in
      let moves_in_a = spoiler_moves a src_a ~k:(k - 1) in
      let moves_in_b = spoiler_moves b src_b ~k:(k - 1) in
      List.for_all
        (fun x ->
          let y = respond ~src:src_a ~dst:src_b ~dst_nlines:b.nlines ~k:(k - 1) x in
          play (pairs @ [ (x, y) ]) (k - 1))
        moves_in_a
      && List.for_all
           (fun y ->
             let x =
               respond ~src:src_b ~dst:src_a ~dst_nlines:a.nlines ~k:(k - 1) y
             in
             play (pairs @ [ (x, y) ]) (k - 1))
           moves_in_b
    end
  in
  play [] r

let isomorphic s1 s2 = s1.nlines = s2.nlines

(* ℤ ↔ ℕ zig-zag coding of positions. *)
let zcode p = if p > 0 then (2 * p) - 1 else -2 * p
let zdecode n = if n mod 2 = 1 then (n + 1) / 2 else -(n / 2)

let decode s x = { line = x mod s.nlines; pos = zdecode (x / s.nlines) }
let encode s p = (zcode p.pos * s.nlines) + p.line

let to_rdb s =
  if s.nlines < 1 then invalid_arg "Lines.to_rdb: empty structure";
  let edge x y =
    let p = decode s x and q = decode s y in
    adjacent s p q
  in
  Rdb.Database.make
    ~name:(Printf.sprintf "%d-lines" s.nlines)
    [| Rdb.Relation.make ~name:"E" ~arity:2 (fun u -> edge u.(0) u.(1)) |]

let equiv s u v =
  Tuple.rank u = Tuple.rank v
  &&
  let pu = Array.map (decode s) u and pv = Array.map (decode s) v in
  Tuple.equality_pattern u = Tuple.equality_pattern v
  && Tuple.equality_pattern (Array.map (fun p -> p.line) pu)
     = Tuple.equality_pattern (Array.map (fun p -> p.line) pv)
  &&
  let n = Array.length pu in
  let line_pattern = Tuple.equality_pattern (Array.map (fun p -> p.line) pu) in
  let nblocks = Combinat.num_blocks line_pattern in
  List.for_all
    (fun blk ->
      let idxs = List.filter (fun i -> line_pattern.(i) = blk) (Ints.range 0 n) in
      match idxs with
      | [] -> true
      | i0 :: _ ->
          let shift = pv.(i0).pos - pu.(i0).pos in
          let translated =
            List.for_all (fun i -> pv.(i).pos = pu.(i).pos + shift) idxs
          in
          let rshift = pv.(i0).pos + pu.(i0).pos in
          let reflected =
            List.for_all (fun i -> pv.(i).pos = rshift - pu.(i).pos) idxs
          in
          translated || reflected)
    (Ints.range 0 nblocks)

