(** Ehrenfeucht–Fraïssé machinery over highly symmetric databases
    (§3.2): the relations [≡_r] (Definition 3.4), the partitions [V^n_r]
    of [Tⁿ] (Definition 3.5), the Proposition 3.7 / Corollary 3.3
    identities, the fixed [r₀] of Proposition 3.6, and the coding tuple
    of the Theorem 3.1 proof (Step 1). *)

type partition = {
  items : Prelude.Tuple.t array;  (** the elements of [Tⁿ], in path order *)
  cls : int array;  (** class id per item, ids dense from 0 *)
  nclasses : int;
}

val partition_blocks : partition -> Prelude.Tuple.t list list
(** The blocks, ordered by class id. *)

val all_singletons : partition -> bool

val same_partition : partition -> partition -> bool
(** Equality as partitions (ignoring class numbering). *)

val v0 : Hsdb.t -> n:int -> partition
(** [V^n_0]: [Tⁿ] partitioned by [≡_0] — local isomorphism, i.e. equal
    atomic diagrams. *)

val vnr : Hsdb.t -> n:int -> r:int -> partition
(** [V^n_r], computed by the Proposition 3.4 recursion: [u ≡_{r+1} v] iff
    the [≡_r]-classes of their tree extensions coincide (both
    directions).  Cost grows with [|T^{n+r}|]. *)

val down : Hsdb.t -> n:int -> partition -> partition
(** The [↓] operator on partitions of [T^{n+1}] (Definition 3.6):
    partition [Tⁿ] by which blocks [Vᵢ] have some extension [ua ∈ Vᵢ].
    Proposition 3.7: [down (V^{n+1}_r) = V^n_{r+1}]. *)

val equiv_r : Hsdb.t -> r:int -> Prelude.Tuple.t -> Prelude.Tuple.t -> bool
(** Direct game recursion for [≡_r], independent of the partition
    machinery (used to cross-check {!vnr}).  Arbitrary tuples are mapped
    to their tree representatives first (Proposition 3.4 allows this). *)

val r0 : ?cap:int -> Hsdb.t -> n:int -> int
(** The least [r] with [V^n_r] all singletons — since [Tⁿ] holds one
    representative per [≅_B]-class, this is the fixed [r] of
    Proposition 3.6 restricted to rank [n].  Raises [Failure] past
    [cap] (default 12). *)

val find_coding_tuple : ?max_rank:int -> Hsdb.t -> Prelude.Tuple.t
(** Step 1 of the Theorem 3.1 proof: a tuple [d] of distinct elements,
    labelling a path of [T_B], such that every representative tuple in
    every [Cᵢ] is [≅_B]-equivalent to a projection of [d].  The database
    relations are then recoverable from [d] by projections, which is what
    lets QL_hs re-code the input over ℕ.  Raises [Failure] if none is
    found up to [max_rank] (default 8). *)

val projections_cover : Hsdb.t -> Prelude.Tuple.t -> bool
(** Whether a given tuple satisfies the {!find_coding_tuple} condition. *)
