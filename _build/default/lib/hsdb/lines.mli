(** The paper's §3.2 counterexample territory: disjoint unions of two-way
    infinite lines.

    These graphs are {e not} highly symmetric (they have no finitely
    branching characteristic tree — distances are unbounded), yet any two
    of them satisfy the same first-order sentences.  The paper uses the
    pair "one line" vs "two lines" to show that, unlike finite or highly
    symmetric structures, elementarily equivalent recursive structures
    need not be isomorphic (contrast with Corollary 3.1), and a similar
    structure to show that Proposition 3.5 fails without high symmetry
    ([≡_r] for every [r] does not imply [≅_B]).

    Elements are pairs (line index, ℤ-position); the duplicator's winning
    strategy in the r-round EF game is the classical distance-truncation
    strategy, and {!strategy_wins} {e verifies} it by exhaustive spoiler
    play: every spoiler move sequence is answered by the strategy, and
    the final configuration is checked to be a partial isomorphism. *)

type point = { line : int; pos : int }

type structure = { nlines : int }
(** The disjoint union of [nlines] two-way infinite lines (nlines ≥ 1). *)

val adjacent : structure -> point -> point -> bool
(** Same line, positions differing by exactly 1. *)

val strategy_wins : a:structure -> b:structure -> r:int -> bool
(** Verify the duplicator's distance-truncation strategy for the r-round
    game between the two structures: spoiler moves are enumerated
    exhaustively up to the radius that matters (2{^r} around existing
    pebbles, plus far-away points and fresh lines); the duplicator
    answers by the strategy; return false if any play ends in a
    non-partial-isomorphism.  Cost grows quickly — keep [r ≤ 3]. *)

val isomorphic : structure -> structure -> bool
(** Trivially: equal numbers of lines (connected components are
    preserved by isomorphisms). *)

val encode : structure -> point -> int
(** The ℕ-code of a point under the interleaved zig-zag coding used by
    {!to_rdb}. *)

val decode : structure -> int -> point
(** Inverse of {!encode}. *)

val to_rdb : structure -> Rdb.Database.t
(** The union of [nlines] lines as a recursive database over ℕ, with
    points (l, p) coded by interleaving — so the counterexample is a
    bona-fide r-db. *)

val equiv : structure -> Prelude.Tuple.t -> Prelude.Tuple.t -> bool
(** [≅_B] for {!to_rdb}, decided analytically: tuples are equivalent iff
    some composition of line permutations, per-line translations and
    reflections matches them. *)
