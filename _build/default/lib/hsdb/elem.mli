(** Elementary equivalence of highly symmetric databases (Corollary 3.1).

    Two structures satisfy the same first-order sentences of quantifier
    rank ≤ r iff the duplicator wins the r-round Ehrenfeucht–Fraïssé game
    [E, Fr].  Over hs-r-dbs both players' moves can be restricted to
    characteristic-tree offspring (Proposition 3.4 across two structures
    of the same type), which makes the game decidable. *)

val ef_game : Hsdb.t -> Hsdb.t -> r:int -> bool
(** Whether the duplicator wins the r-round game on the two databases
    (starting from the empty position).  Requires equal types. *)

val ef_game_from :
  Hsdb.t -> Prelude.Tuple.t -> Hsdb.t -> Prelude.Tuple.t -> r:int -> bool
(** The game started from a pair of tree paths (the (B,u) vs (B,v)
    formulation of Definition 3.4 when both sides are the same
    database). *)

val distinguishing_round : ?cap:int -> Hsdb.t -> Hsdb.t -> int option
(** Least [r] at which the spoiler wins, i.e. a sentence of quantifier
    rank [r] separates the structures; [None] if the duplicator wins all
    rounds up to [cap] (default 6) — for hs databases that means the
    structures are isomorphic once [cap] passes the Proposition 3.6
    threshold. *)

val separating_sentence : ?cap:int -> Hsdb.t -> Hsdb.t -> Rlogic.Ast.formula option
(** A concrete first-order sentence true in the first database and false
    in the second (a Hintikka sentence at the distinguishing round);
    [None] when no separation is found up to [cap]. *)

val amalgam :
  ?cross:(Prelude.Tuple.t -> Prelude.Tuple.t -> bool) option ->
  Hsdb.t ->
  Hsdb.t ->
  Hsdb.t * int * int
(** The Corollary 3.1 proof construction: from B₁ and B₂ of the same
    type, build [B = (D₃, S₁, ..., S_k, E)] where D₃ is the disjoint
    union of the two domains plus two fresh points a and b, each [Sᵢ] is
    [Rᵢ ∪ R′ᵢ], and E connects a to all of D₁ and b to all of D₂.  Then
    [a ≅_B b] iff [B₁ ≅ B₂].

    Returns (B, a, b) with a and b as domain codes (B₁'s element x is
    coded as 2x+2, B₂'s as 2x+3).

    [cross] is the cross-structure equivalence oracle: whether some
    isomorphism B₁ → B₂ maps a given tuple to another.  Pass
    [Some f] when the structures are isomorphic (for B₁ = B₂ built from
    the same instance, [f] is its own [≅_B]), or [None] (the default)
    when they are known non-isomorphic — the amalgam's automorphisms
    then fix each side. *)
