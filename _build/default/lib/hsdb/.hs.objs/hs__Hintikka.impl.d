lib/hsdb/hintikka.ml: Core Hsdb List Localiso Prelude Printf Rlogic Tuple
