lib/hsdb/lines.ml: Array Combinat Ints List Prelude Printf Rdb Tuple
