lib/hsdb/hsdb.ml: Array Combinat Format Hashtbl List Localiso Prelude Printf Rdb Tuple Tupleset
