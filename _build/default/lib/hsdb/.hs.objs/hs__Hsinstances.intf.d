lib/hsdb/hsinstances.mli: Hsdb Prelude
