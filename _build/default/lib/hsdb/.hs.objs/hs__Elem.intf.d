lib/hsdb/elem.mli: Hsdb Prelude Rlogic
