lib/hsdb/hsinstances.ml: Array Combinat Fun Hsdb Ints List Localiso Prelude Printf Rdb String Tuple Tupleset
