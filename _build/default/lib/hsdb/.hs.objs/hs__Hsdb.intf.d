lib/hsdb/hsdb.mli: Format Prelude Rdb
