lib/hsdb/ef.mli: Hsdb Prelude
