lib/hsdb/fo_eval.mli: Hsdb Prelude Rlogic
