lib/hsdb/lines.mli: Prelude Rdb
