lib/hsdb/fo_eval.ml: Array Combinat Hsdb List Prelude Rdb Rlogic Tuple Tupleset
