lib/hsdb/elem.ml: Array Hintikka Hsdb List Localiso Prelude Printf Rdb Tuple
