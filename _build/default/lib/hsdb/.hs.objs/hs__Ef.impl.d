lib/hsdb/ef.ml: Array Combinat Fun Hashtbl Hsdb List Localiso Prelude Tuple Tupleset
