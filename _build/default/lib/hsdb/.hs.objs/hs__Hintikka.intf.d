lib/hsdb/hintikka.mli: Hsdb Prelude Rlogic
