open Prelude

(* ------------------------------------------------------------------ *)
(* Clique and empty graph: the automorphism group is the full symmetric
   group on the domain, so tuples are equivalent iff their equality
   patterns coincide, and T^n is the set of restricted-growth strings. *)

let pattern_equiv u v =
  Tuple.rank u = Tuple.rank v
  && Tuple.equality_pattern u = Tuple.equality_pattern v

let rgs_children u =
  let distinct = Tuple.distinct_elements u in
  let fresh = 1 + Array.fold_left max (-1) u in
  distinct @ [ fresh ]

let infinite_clique () =
  Hsdb.make ~name:"clique" ~db:(Rdb.Instances.infinite_clique ())
    ~children:rgs_children ~equiv:pattern_equiv ()

let empty_graph () =
  Hsdb.make ~name:"empty" ~db:(Rdb.Instances.empty_graph ())
    ~children:rgs_children ~equiv:pattern_equiv ()

(* ------------------------------------------------------------------ *)
(* m infinite cliques: automorphisms permute residue classes mod m and
   act arbitrarily within each class. *)

let residue_pattern m u = Tuple.equality_pattern (Array.map (fun x -> x mod m) u)

let mod_cliques m =
  if m <= 0 then invalid_arg "Hsinstances.mod_cliques: m <= 0";
  let equiv u v =
    Tuple.rank u = Tuple.rank v
    && Tuple.equality_pattern u = Tuple.equality_pattern v
    && residue_pattern m u = residue_pattern m v
  in
  let children u =
    let used = Tuple.distinct_elements u in
    let used_residues =
      List.sort_uniq compare (List.map (fun x -> x mod m) used)
    in
    let least_unused_with_residue r =
      let rec go y = if (not (List.mem y used)) && y mod m = r then y else go (y + 1) in
      go 0
    in
    let fresh_in_used =
      List.map least_unused_with_residue used_residues
    in
    let fresh_residue =
      match
        List.find_opt (fun r -> not (List.mem r used_residues)) (Ints.range 0 m)
      with
      | Some r -> [ least_unused_with_residue r ]
      | None -> []
    in
    used @ fresh_in_used @ fresh_residue
  in
  Hsdb.make
    ~name:(Printf.sprintf "mod%d" m)
    ~db:(Rdb.Instances.mod_cliques m) ~children ~equiv ()

(* ------------------------------------------------------------------ *)
(* Disjoint copies of finitely many finite components.                 *)

type component = {
  cname : string;
  size : int;
  adj : bool array array;
  autos : int array list;
}

let component ?name ~vertices ~edges () =
  if vertices <= 0 then invalid_arg "Hsinstances.component: empty component";
  let adj = Array.make_matrix vertices vertices false in
  List.iter
    (fun (x, y) ->
      if x < 0 || x >= vertices || y < 0 || y >= vertices then
        invalid_arg "Hsinstances.component: edge out of range";
      adj.(x).(y) <- true)
    edges;
  (* The disjoint-copies equivalence logic (permute copies + per-copy
     automorphisms) is only the full automorphism group when each
     component type is weakly connected — enforce it. *)
  let reached = Array.make vertices false in
  let rec visit v =
    if not reached.(v) then begin
      reached.(v) <- true;
      for w = 0 to vertices - 1 do
        if adj.(v).(w) || adj.(w).(v) then visit w
      done
    end
  in
  visit 0;
  if not (Array.for_all Fun.id reached) then
    invalid_arg "Hsinstances.component: component must be weakly connected";
  let autos =
    Combinat.permutations (Ints.range 0 vertices)
    |> List.map Array.of_list
    |> List.filter (fun sigma ->
           let ok = ref true in
           for i = 0 to vertices - 1 do
             for j = 0 to vertices - 1 do
               if adj.(i).(j) <> adj.(sigma.(i)).(sigma.(j)) then ok := false
             done
           done;
           !ok)
  in
  let cname =
    match name with Some n -> n | None -> Printf.sprintf "C%d" vertices
  in
  { cname; size = vertices; adj; autos }

let undirected_path_component k =
  let edges =
    List.concat_map (fun i -> [ (i, i + 1); (i + 1, i) ]) (Ints.range 0 (k - 1))
  in
  component ~name:(Printf.sprintf "path%d" k) ~vertices:k ~edges ()

let triangle_component =
  component ~name:"triangle" ~vertices:3
    ~edges:[ (0, 1); (1, 0); (1, 2); (2, 1); (0, 2); (2, 0) ]
    ()

let directed_edge_component =
  component ~name:"arrow" ~vertices:2 ~edges:[ (0, 1) ] ()

let components_isomorphic c1 c2 =
  c1.size = c2.size
  && List.exists
       (fun sigma ->
         let sigma = Array.of_list sigma in
         let ok = ref true in
         for i = 0 to c1.size - 1 do
           for j = 0 to c1.size - 1 do
             if c1.adj.(i).(j) <> c2.adj.(sigma.(i)).(sigma.(j)) then ok := false
           done
         done;
         !ok)
       (Combinat.permutations (Ints.range 0 c1.size))

let disjoint_copies ?name comps =
  if comps = [] then invalid_arg "Hsinstances.disjoint_copies: no components";
  (* §3.1 requires finitely many pairwise non-isomorphic components; with
     isomorphic duplicates the copy-permutation group would be larger than
     the equivalence we compute. *)
  let rec check = function
    | [] -> ()
    | c :: rest ->
        if List.exists (components_isomorphic c) rest then
          invalid_arg "Hsinstances.disjoint_copies: duplicate component types";
        check rest
  in
  check comps;
  let comps = Array.of_list comps in
  let total = Array.fold_left (fun acc c -> acc + c.size) 0 comps in
  let offsets = Array.make (Array.length comps) 0 in
  let () =
    let acc = ref 0 in
    Array.iteri
      (fun i c ->
        offsets.(i) <- !acc;
        acc := !acc + c.size)
      comps
  in
  (* decode x = (copy, component index, vertex within component) *)
  let decode x =
    let copy = x / total and w = x mod total in
    let rec find i =
      if i + 1 >= Array.length comps || w < offsets.(i + 1) then i
      else find (i + 1)
    in
    let i = find 0 in
    (copy, i, w - offsets.(i))
  in
  let encode copy i j = (copy * total) + offsets.(i) + j in
  let adjacent x y =
    let cx, ix, jx = decode x and cy, iy, jy = decode y in
    cx = cy && ix = iy && comps.(ix).adj.(jx).(jy)
  in
  let nm =
    match name with
    | Some n -> n
    | None ->
        "copies:"
        ^ String.concat "+"
            (Array.to_list (Array.map (fun c -> c.cname) comps))
  in
  let db =
    Rdb.Database.make ~name:nm
      [| Rdb.Relation.make ~name:"E" ~arity:2 (fun u -> adjacent u.(0) u.(1)) |]
  in
  let equiv u v =
    Tuple.rank u = Tuple.rank v
    && Tuple.equality_pattern u = Tuple.equality_pattern v
    &&
    (* Partition positions by touched component instance. *)
    let inst_pattern w =
      Tuple.equality_pattern
        (Array.map
           (fun x ->
             let c, i, _ = decode x in
             (c * Array.length comps) + i)
           w)
    in
    let pu = inst_pattern u and pv = inst_pattern v in
    pu = pv
    &&
    let nblocks = Combinat.num_blocks pu in
    let positions_of_block b =
      List.filter (fun p -> pu.(p) = b) (Ints.range 0 (Tuple.rank u))
    in
    List.for_all
      (fun b ->
        let ps = positions_of_block b in
        let _, iu, _ = decode u.(List.hd ps) in
        let _, iv, _ = decode v.(List.hd ps) in
        iu = iv
        && List.exists
             (fun sigma ->
               List.for_all
                 (fun p ->
                   let _, _, ju = decode u.(p) in
                   let _, _, jv = decode v.(p) in
                   sigma.(ju) = jv)
                 ps)
             comps.(iu).autos)
      (Ints.range 0 nblocks)
  in
  let children u =
    let used = Tuple.distinct_elements u in
    let touched =
      List.sort_uniq compare
        (List.map
           (fun x ->
             let c, i, _ = decode x in
             (c, i))
           used)
    in
    let in_touched =
      List.concat_map
        (fun (c, i) ->
          List.filter_map
            (fun j ->
              let code = encode c i j in
              if List.mem code used then None else Some code)
            (Ints.range 0 comps.(i).size))
        touched
    in
    let fresh_copy =
      1 + List.fold_left (fun acc x -> max acc (x / total)) (-1) used
    in
    let fresh =
      List.concat_map
        (fun i ->
          List.map (fun j -> encode fresh_copy i j)
            (Ints.range 0 comps.(i).size))
        (Ints.range 0 (Array.length comps))
    in
    Hsdb.dedupe_extensions ~equiv u (used @ in_touched @ fresh)
  in
  Hsdb.make ~name:nm ~db ~children ~equiv ()

let triangles () = disjoint_copies ~name:"triangles" [ triangle_component ]

(* ------------------------------------------------------------------ *)
(* The Rado graph.                                                     *)

let rado ?(search_bound = 1_000_000) () =
  let db = Rdb.Instances.rado () in
  let adjacent x y =
    x <> y
    &&
    let lo = min x y and hi = max x y in
    Ints.bit lo hi
  in
  let equiv u v = Localiso.Liso.check_same db u v in
  let children u =
    let ds = Tuple.distinct_elements u in
    let witness s =
      let rec go y =
        if y > search_bound then
          failwith "Hsinstances.rado: witness search bound exceeded"
        else if
          (not (List.mem y ds))
          && List.for_all (fun d -> adjacent y d = List.mem d s) ds
        then y
        else go (y + 1)
      in
      go 0
    in
    ds @ List.map witness (Combinat.subsets ds)
  in
  Hsdb.make ~name:"rado" ~db ~children ~equiv ()

(* ------------------------------------------------------------------ *)
(* A random structure of type (1, 2): coloured vertices, shifted-BIT
   edges.  Bit 0 of a code is its colour; for x < y, x ~ y iff bit
   (x + 1) of y — so a fresh witness's colour and adjacency pattern are
   governed by disjoint bit positions and every extension type over a
   finite set is realized. *)

let random_colored_graph ?(search_bound = 1_000_000) () =
  let colour x = Ints.bit 0 x in
  let adjacent x y =
    x <> y
    &&
    let lo = min x y and hi = max x y in
    Ints.bit (lo + 1) hi
  in
  let db =
    Rdb.Database.make ~name:"random_colored"
      [|
        Rdb.Relation.make ~name:"C" ~arity:1 (fun u -> colour u.(0));
        Rdb.Relation.make ~name:"E" ~arity:2 (fun u -> adjacent u.(0) u.(1));
      |]
  in
  let equiv u v = Localiso.Liso.check_same db u v in
  let children u =
    let ds = Tuple.distinct_elements u in
    let witness c s =
      let rec go y =
        if y > search_bound then
          failwith "Hsinstances.random_colored_graph: search bound exceeded"
        else if
          (not (List.mem y ds))
          && colour y = c
          && List.for_all (fun d -> adjacent y d = List.mem d s) ds
        then y
        else go (y + 1)
      in
      go 0
    in
    ds
    @ List.concat_map
        (fun s -> [ witness false s; witness true s ])
        (Combinat.subsets ds)
  in
  Hsdb.make ~name:"random_colored" ~db ~children ~equiv ()

(* ------------------------------------------------------------------ *)
(* K_{ω,ω}: the complete bipartite graph on the parity classes.        *)

let complete_bipartite () =
  let db =
    Rdb.Database.make ~name:"bipartite"
      [|
        Rdb.Relation.make ~name:"E" ~arity:2 (fun u ->
            u.(0) mod 2 <> u.(1) mod 2);
      |]
  in
  let equiv u v =
    Tuple.rank u = Tuple.rank v
    && Tuple.equality_pattern u = Tuple.equality_pattern v
    && residue_pattern 2 u = residue_pattern 2 v
  in
  let children u =
    let used = Tuple.distinct_elements u in
    let used_parities =
      List.sort_uniq compare (List.map (fun x -> x mod 2) used)
    in
    let least_unused_with_parity r =
      let rec go y =
        if (not (List.mem y used)) && y mod 2 = r then y else go (y + 1)
      in
      go 0
    in
    let fresh_in_used = List.map least_unused_with_parity used_parities in
    let fresh_parity =
      match
        List.find_opt (fun r -> not (List.mem r used_parities)) [ 0; 1 ]
      with
      | Some r -> [ least_unused_with_parity r ]
      | None -> []
    in
    used @ fresh_in_used @ fresh_parity
  in
  Hsdb.make ~name:"bipartite" ~db ~children ~equiv ()

(* ------------------------------------------------------------------ *)
(* A unary finite set: the simplest finite/co-finite database.         *)

let unary_finite_set ~members =
  let members = List.sort_uniq compare members in
  let db =
    Rdb.Database.make ~name:"unary_fcf"
      [|
        Rdb.Relation.of_tupleset ~name:"R" ~arity:1
          (Tupleset.of_lists (List.map (fun x -> [ x ]) members));
      |]
  in
  let in_r x = List.mem x members in
  let equiv u v =
    Tuple.rank u = Tuple.rank v
    && Tuple.equality_pattern u = Tuple.equality_pattern v
    && Array.for_all2 (fun x y -> in_r x = in_r y) u v
  in
  let children u =
    let used = Tuple.distinct_elements u in
    let unused_member =
      List.find_opt (fun x -> not (List.mem x used)) members
    in
    let unused_nonmember =
      let rec go y =
        if (not (in_r y)) && not (List.mem y used) then y else go (y + 1)
      in
      go 0
    in
    used
    @ (match unused_member with Some x -> [ x ] | None -> [])
    @ [ unused_nonmember ]
  in
  Hsdb.make ~name:"unary_fcf" ~db ~children ~equiv ()

(* ------------------------------------------------------------------ *)
(* Analytic equivalence oracles for non-hs instances.                  *)

let line_equiv u v =
  Tuple.rank u = Tuple.rank v
  &&
  let pu = Array.map Rdb.Instances.line_position u in
  let pv = Array.map Rdb.Instances.line_position v in
  let n = Array.length pu in
  if n = 0 then true
  else
    let shift = pv.(0) - pu.(0) in
    let translated = Array.for_all2 (fun a b -> b = a + shift) pu pv in
    let rshift = pv.(0) + pu.(0) in
    let reflected = Array.for_all2 (fun a b -> b = rshift - a) pu pv in
    translated || reflected

let less_than_equiv u v = Tuple.equal u v

let grid_marked_equiv m n =
  let norm k =
    let x, y = Rdb.Instances.grid_position k in
    let a = abs x and b = abs y in
    (min a b, max a b)
  in
  norm m = norm n
