(** Concrete highly symmetric recursive databases, each given by its
    representation [C_B = (T_B, ≅_B, C₁, ..., C_k)].

    The characteristic trees use canonical labels, so [Tⁿ] enumerations
    are deterministic; every instance also carries its raw [Rdb] database
    for cross-checking. *)

val infinite_clique : unit -> Hsdb.t
(** The full infinite clique (§3: "the full infinite clique is highly
    symmetric").  Tuple equivalence is equality of equality patterns;
    [Tⁿ] is the set of restricted-growth strings of length [n]. *)

val empty_graph : unit -> Hsdb.t
(** The edgeless graph — same tree and equivalence as the clique. *)

val mod_cliques : int -> Hsdb.t
(** [mod_cliques m]: ℕ split into [m] infinite cliques (x ~ y iff same
    residue mod [m]).  Automorphisms permute the cliques and the
    elements within each. *)

type component
(** A finite (directed) component type for {!disjoint_copies}. *)

val component :
  ?name:string -> vertices:int -> edges:(int * int) list -> unit -> component
(** Vertex set [{0, ..., vertices-1}] and directed edge list (include
    both directions for undirected components). *)

val undirected_path_component : int -> component
(** A path on [k] vertices (undirected). *)

val triangle_component : component
(** K₃ (undirected). *)

val directed_edge_component : component
(** Two vertices with a single directed edge 0 → 1 — the flavour of the
    paper's §3.3 worked example, whose class representatives are single
    directed edges. *)

val disjoint_copies : ?name:string -> component list -> Hsdb.t
(** Infinitely many disjoint copies of each given component type — the
    general shape of highly symmetric graphs described in §3.1
    ("finitely many pairwise non-isomorphic components, each highly
    symmetric").  Vertex [x] encodes (copy [x / total], offset
    [x mod total]) where [total] is the sum of component sizes, so each
    block of [total] consecutive naturals carries one copy of every
    type.  Tuple equivalence matches touched component instances by type
    and checks a component isomorphism per instance; offspring are
    produced generically from candidate extensions deduplicated by
    [≅_B]. *)

val triangles : unit -> Hsdb.t
(** [disjoint_copies [triangle_component]] — coincides with
    [Rdb.Instances.triangles]'s coding. *)

val rado : ?search_bound:int -> unit -> Hsdb.t
(** The Rado graph via the BIT predicate, as an hs-r-db (Proposition 3.2
    and the recursive random structure of [HH2]): tuple equivalence is
    local isomorphism, and offspring are least witnesses of each 1-point
    extension type, found by search (raises [Failure] if no witness
    appears below [search_bound]; the default is ample for ranks ≤ 4). *)

val random_colored_graph : ?search_bound:int -> unit -> Hsdb.t
(** A recursive countable random structure of type (1, 2) — Proposition
    3.2 beyond plain graphs: vertices carry a colour (R₁ unary, bit 0 of
    the code) and edges follow a shifted BIT predicate, so every
    colour-and-adjacency extension type over a finite set is realized.
    Tuple equivalence is local isomorphism; offspring are least
    witnesses found by search. *)

val complete_bipartite : unit -> Hsdb.t
(** K_{ω,ω}: edges exactly between the two parity classes of ℕ.  Highly
    symmetric (permute within sides, swap the sides) — same tree and
    equivalence as {!mod_cliques}[ 2], complementary edge relation. *)

val unary_finite_set : members:int list -> Hsdb.t
(** A unary database whose relation R is the finite set [members] (its
    complement is co-finite) — the simplest finite/co-finite hs-r-db
    (§4).  Automorphisms permute R and its complement separately. *)

(** {1 Equivalence oracles for non-highly-symmetric databases}

    These have no finitely-branching characteristic tree, but their
    automorphism equivalence is still decidable analytically; the
    Proposition 3.1 experiments (E6) use them to show the failure of
    high symmetry. *)

val line_equiv : Prelude.Tuple.t -> Prelude.Tuple.t -> bool
(** [≅_B] for [Rdb.Instances.successor_line]: automorphisms are the
    translations and reflections of the line, so tuples are equivalent
    iff their position sequences agree up to an isometry of ℤ. *)

val less_than_equiv : Prelude.Tuple.t -> Prelude.Tuple.t -> bool
(** [≅_B] for [(ℕ, <)]: the only automorphism is the identity, so
    equivalence is equality. *)

val grid_marked_equiv : int -> int -> bool
(** Rank-1 equivalence in the grid stretched by its origin node: the
    automorphisms fixing the origin are the dihedral symmetries, so two
    nodes are interchangeable iff their coordinate multisets
    {|x|, |y|} agree.  Used by the E6 experiment to exhibit the §3.1
    claim that the grid is not highly symmetric. *)
