(** Hintikka (r-characteristic) formulas over highly symmetric databases.

    [formula t ~path:u ~r] is the first-order formula
    φ{^r}{_u}(x₁, ..., xₙ) of quantifier rank [r] that characterizes the
    [≡_r]-class of [u] (§3.2): a structure pair (B′, v) satisfies it iff
    the duplicator wins the r-round game between (B, u) and (B′, v).
    These formulas realize the r-quantifier characterization of
    Definition 3.4 ("u and v satisfy precisely the same first-order
    formulas with up to r quantifiers"), and are the building blocks of
    the Theorem 6.3 expression synthesis and the Corollary 3.1 separating
    sentences.

    At r = 0 the formula is the atomic-diagram description (the φᵢ of
    Theorem 2.1); at r+1 it is
    [⋀_{a ∈ T(u)} ∃y φ^r_{ua} ∧ ∀y ⋁_{a ∈ T(u)} φ^r_{ua}].

    Sizes grow exponentially in [r]; callers keep [r] small. *)

val formula : Hsdb.t -> path:Prelude.Tuple.t -> r:int -> Rlogic.Ast.formula
(** Free variables [x1 ... xn] where [n = rank path]; [path] must label a
    tree path. *)

val sentence : Hsdb.t -> r:int -> Rlogic.Ast.formula
(** [formula t ~path:() ~r] — the depth-r Hintikka sentence of the whole
    structure. *)
