open Prelude

type partition = { items : Tuple.t array; cls : int array; nclasses : int }

let partition_blocks p =
  let blocks = Array.make p.nclasses [] in
  Array.iteri (fun i u -> blocks.(p.cls.(i)) <- u :: blocks.(p.cls.(i))) p.items;
  Array.to_list (Array.map List.rev blocks)

let all_singletons p = p.nclasses = Array.length p.items

let same_partition p q =
  Array.length p.items = Array.length q.items
  && p.items = q.items
  && p.nclasses = q.nclasses
  &&
  (* Same grouping up to renumbering: the pairing cls_p(i) ↦ cls_q(i)
     must be a well-defined bijection. *)
  let fwd = Hashtbl.create 16 and bwd = Hashtbl.create 16 in
  let ok = ref true in
  Array.iteri
    (fun i a ->
      let b = q.cls.(i) in
      (match Hashtbl.find_opt fwd a with
      | Some b' when b' <> b -> ok := false
      | Some _ -> ()
      | None -> Hashtbl.add fwd a b);
      match Hashtbl.find_opt bwd b with
      | Some a' when a' <> a -> ok := false
      | Some _ -> ()
      | None -> Hashtbl.add bwd b a)
    p.cls;
  !ok

(* Partition an item array by an arbitrary signature function. *)
let partition_by items signature =
  let table = Hashtbl.create 16 in
  let next = ref 0 in
  let cls =
    Array.map
      (fun u ->
        let s = signature u in
        match Hashtbl.find_opt table s with
        | Some id -> id
        | None ->
            let id = !next in
            incr next;
            Hashtbl.add table s id;
            id)
      items
  in
  { items; cls; nclasses = !next }

let v0 t ~n =
  let items = Array.of_list (Hsdb.paths t n) in
  partition_by items (fun u -> Localiso.Diagram.of_pair (Hsdb.db t) u)

let class_lookup p =
  let table = Hashtbl.create (Array.length p.items) in
  Array.iteri (fun i u -> Hashtbl.replace table u p.cls.(i)) p.items;
  fun u -> Hashtbl.find table u

let rec vnr t ~n ~r =
  if r < 0 then invalid_arg "Ef.vnr: negative r";
  if r = 0 then v0 t ~n
  else begin
    let deeper = vnr t ~n:(n + 1) ~r:(r - 1) in
    let lookup = class_lookup deeper in
    let items = Array.of_list (Hsdb.paths t n) in
    let signature u =
      List.sort_uniq compare
        (List.map (fun a -> lookup (Tuple.append u a)) (Hsdb.children t u))
    in
    partition_by items signature
  end

let down t ~n p =
  let lookup = class_lookup p in
  let items = Array.of_list (Hsdb.paths t n) in
  let signature u =
    List.sort_uniq compare
      (List.map (fun a -> lookup (Tuple.append u a)) (Hsdb.children t u))
  in
  partition_by items signature

let equiv_r t ~r u v =
  let u = if Hsdb.is_path t u then u else Hsdb.representative t u in
  let v = if Hsdb.is_path t v then v else Hsdb.representative t v in
  let db = Hsdb.db t in
  let rec game r u v =
    Localiso.Diagram.equal
      (Localiso.Diagram.of_pair db u)
      (Localiso.Diagram.of_pair db v)
    && (r = 0
       ||
       let cu = List.map (Tuple.append u) (Hsdb.children t u) in
       let cv = List.map (Tuple.append v) (Hsdb.children t v) in
       List.for_all (fun ua -> List.exists (fun vb -> game (r - 1) ua vb) cv) cu
       && List.for_all
            (fun vb -> List.exists (fun ua -> game (r - 1) ua vb) cu)
            cv)
  in
  game r u v

let r0 ?(cap = 12) t ~n =
  let rec go r =
    if r > cap then failwith "Ef.r0: cap exceeded"
    else if all_singletons (vnr t ~n ~r) then r
    else go (r + 1)
  in
  go 0

let projections_cover t d =
  let db_type = Hsdb.db_type t in
  let n = Tuple.rank d in
  let covered c =
    let a = Tuple.rank c in
    Combinat.fold_cartesian
      (fun acc js -> acc || Hsdb.equiv t (Tuple.project d js) c)
      false ~width:a ~bound:n
  in
  List.length (Tuple.distinct_elements d) = n
  && Array.for_all
       (fun i -> Tupleset.for_all covered (Hsdb.reps t i))
       (Array.init (Array.length db_type) Fun.id)

let find_coding_tuple ?(max_rank = 8) t =
  let rec go n =
    if n > max_rank then
      failwith "Ef.find_coding_tuple: no coding tuple within max_rank"
    else
      match List.find_opt (projections_cover t) (Hsdb.paths t n) with
      | Some d -> d
      | None -> go (n + 1)
  in
  go 1
