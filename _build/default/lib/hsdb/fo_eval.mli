(** Full first-order evaluation over highly symmetric databases, with
    quantifiers ranging over the characteristic tree only — the
    evaluation procedure inside Theorem 6.3's proof ("it suffices to
    evaluate the quantifiers only over the finitely many elements from
    [T^{n+k}]").

    A free tuple is first replaced by its representative (genericity
    makes the answer invariant); each quantifier then extends the current
    tree path by the finitely many offspring labels.  Soundness is
    Proposition 3.4 by induction on the formula. *)

val holds :
  Hsdb.t -> path:Prelude.Tuple.t -> vars:string list -> Rlogic.Ast.formula -> bool
(** [holds t ~path ~vars f]: evaluate [f] with the i-th variable of
    [vars] bound to [path.(i)]; [path] must label a root path of [T_B].
    Quantified variables extend the path through the tree. *)

val mem : Hsdb.t -> Rlogic.Ast.query -> Prelude.Tuple.t -> bool option
(** [mem t q u]: [None] for [undefined]; otherwise whether [u ∈ Q(B)].
    [u] is arbitrary (mapped to its representative first); the formula
    may contain quantifiers. *)

val eval_sentence : Hsdb.t -> Rlogic.Ast.formula -> bool
(** Truth of a sentence in the infinite structure B, computed in finite
    time through the tree. *)

val eval_reps : Hsdb.t -> Rlogic.Ast.query -> rank:int -> Prelude.Tupleset.t
(** The output of the query in hs-r-query form (Definition 3.9): the set
    of representatives in [Tⁿ] of the equivalence classes constituting
    the answer relation. *)

val eval_upto : Hsdb.t -> Rlogic.Ast.query -> cutoff:int -> Prelude.Tupleset.t
(** Concrete members of the answer among tuples over
    [{0, ..., cutoff-1}], decided via representatives — comparable
    against [Rlogic.Qf_eval.eval_upto] with bounded quantifiers (E17). *)
