open Prelude

let var i = Printf.sprintf "x%d" (i + 1)

let rec build t u r =
  let n = Tuple.rank u in
  if r = 0 then
    let d = Localiso.Diagram.of_pair (Hsdb.db t) u in
    let vars =
      Core.Completeness.Diagram_vars.of_names (List.init n var)
    in
    Core.Completeness.formula_of_diagram vars d
  else begin
    let y = var n in
    let extensions =
      List.map (fun a -> build t (Tuple.append u a) (r - 1)) (Hsdb.children t u)
    in
    let some_each =
      Rlogic.Ast.conj
        (List.map (fun f -> Rlogic.Ast.Exists (y, f)) extensions)
    in
    let all_covered = Rlogic.Ast.Forall (y, Rlogic.Ast.disj extensions) in
    Rlogic.Ast.And (some_each, all_covered)
  end

let formula t ~path ~r =
  if not (Hsdb.is_path t path) then
    invalid_arg "Hintikka.formula: not a tree path";
  if r < 0 then invalid_arg "Hintikka.formula: negative rank";
  build t path r

let sentence t ~r = formula t ~path:Tuple.empty ~r
