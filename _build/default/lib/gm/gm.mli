(** Generic machines over highly symmetric databases — GM_hs (§5,
    after Abiteboul–Vianu [AV]).

    A GM_hs is a set of {e unit machines} computing synchronously.  Each
    unit has a finite-state control, a two-head tape over a dual
    alphabet (machine symbols and domain elements), and a relational
    store.  Loading a relation with n tuples spawns n copies, one tuple
    appended to each copy's tape; units that reach the same state and
    tape contents collapse into one, their stores merging by union.
    Oracle access is exactly the paper's: loading offspring of the
    current tuple from [T_B], storing a [T_B]-representative equivalent
    to the current tuple, and transitions may test cell equality and
    tuple equivalence ([≅_B]).

    Faithfulness notes (see DESIGN.md): transitions are OCaml functions
    of the observable view (state, scanned cells, the two tests, store
    emptiness) — the finite-state control of the paper, uncompiled; the
    [Seek]/[Truncate] tape actions are macro conveniences for plain
    head-sweep subroutines. *)

type cell = Blank | Sym of int | Elem of int
type head = H1 | H2
type direction = Left | Right

type simple =
  | Write of cell  (** write under head 1 *)
  | Move of head * direction
  | Seek of head * [ `Start | `Last_run | `Next_run ]
      (** move a head to the tape start, to the beginning of the last
          maximal run of domain elements, or to the beginning of the
          next run strictly after the current position's run *)
  | Truncate
      (** erase the trailing element-run (and blanks) from the tape end
          and reset both heads to the start *)

type source =
  | From_rel of int  (** load the representatives in store register i *)
  | Offspring
      (** load the tree extensions of the current tuple: for each
          offspring label [a] of the current tuple [u], one spawned unit
          gets [ua] appended.  With no current tuple under head 1, the
          root's offspring (the rank-1 representatives) are loaded. *)

type act =
  | Step of simple list * int  (** tape actions, then change state *)
  | Load of source * int  (** spawning load, then change state *)
  | Store of int * int
      (** store a [T_B]-representative equivalent to the current tuple
          into store register i, then change state *)
  | Clear of int * int
      (** empty store register i, then change state (the [AV] relational
          store supports assignment; used by the Theorem 5.1 loading
          protocol's probe register) *)
  | Halt

type view = {
  state : int;
  cell1 : cell;
  cell2 : cell;
  tuple1 : Prelude.Tuple.t option;
      (** maximal run of domain elements starting at head 1 — "the
          current tuple" *)
  tuple2 : Prelude.Tuple.t option;
  cells_equal : bool option;  (** when both scanned cells are elements *)
  tuples_equivalent : bool option;  (** the [≅_B] test, when both runs exist *)
  heads_equal : bool;  (** whether the two heads sit on the same cell *)
  store_empty : bool array;
}

type spec = {
  nstores : int;
      (** registers beyond the inputs: the store is [C₁ … C_k] followed
          by [nstores] scratch/output registers *)
  start : int;
  delta : view -> act;
}

type unit_gm = {
  ustate : int;
  tape : cell array;
  h1 : int;
  h2 : int;
  store : Prelude.Tupleset.t array;
}

exception Bad_program of string
(** Raised when a transition is applied in a configuration it does not
    fit (missing current tuple, bad register). *)

type result = {
  units : unit_gm list;  (** all halted units *)
  steps : int;
  peak_units : int;  (** maximum number of live units at any step *)
  collapses : int;  (** units removed by collapsing, summed over steps *)
}

val run : spec -> Hs.Hsdb.t -> fuel:int -> result option
(** Execute from a single unit in the start state with an empty tape and
    the input representatives [C₁ … C_k] in the first store registers.
    [None] when fuel runs out before all units halt. *)

val output : result -> reg:int -> Prelude.Tupleset.t option
(** The paper's success condition: exactly one unit remains, in a
    halting state with an empty tape; returns that unit's register.
    [reg] counts from 0 over the full store (inputs first). *)
