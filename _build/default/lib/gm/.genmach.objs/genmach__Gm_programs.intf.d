lib/gm/gm_programs.mli: Gm Hs
