lib/gm/gm_programs.ml: Array Gm Hs Printf
