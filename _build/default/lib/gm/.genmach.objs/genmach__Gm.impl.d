lib/gm/gm.ml: Array Hashtbl Hs List Prelude Tuple Tupleset
