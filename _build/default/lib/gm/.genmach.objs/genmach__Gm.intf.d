lib/gm/gm.mli: Hs Prelude
