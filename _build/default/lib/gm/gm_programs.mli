(** Example GM_hs programs, including the Theorem 5.1 loading protocol's
    observable behaviour: a [Load] spawns one unit per representative,
    the units do their local work, and erasing the tape makes them
    collapse back into a single unit whose store holds the union of the
    partial answers.

    Every program writes its answer to an explicit output register
    [out]; use [output_reg db] for the first scratch register (just
    after the input relations) and give specs [nstores ≥ 1]. *)

val output_reg : Hs.Hsdb.t -> int
(** The store register just after the inputs. *)

val load_relation : out:int -> rel:int -> Gm.spec
(** Load relation [rel] and re-store it: output = [C_rel].  The point is
    the round trip through spawning and collapse — [peak_units] reaches
    [|C_rel|] and the final unit count is 1. *)

val union : out:int -> rel1:int -> rel2:int -> Gm.spec
(** Output = [C_rel1 ∪ C_rel2] (same-rank relations). *)

val inter_by_equiv : out:int -> rel1:int -> rel2:int -> Gm.spec
(** Output = the representatives of [rel1] whose class also constitutes
    [rel2], decided with the [≅_B] oracle test (transition condition 4
    of §5) on pairs of loaded tuples. *)

val up : out:int -> rel:int -> Gm.spec
(** Output = the tree extensions of [C_rel] — the GM_hs counterpart of
    the QL_hs term [Rel↑], exercising the offspring-loading transition
    (action (v) of §5). *)

val load_all : out:int -> probe:int -> rel:int -> Gm.spec
(** The {e full} Theorem 5.1 loading protocol: build up, on the tape,
    the complete list of representatives of relation [rel] — one per
    unit, in every order — and store them into [out].

    Each outer round first runs a {e probe}: one more "load Cᵢ", after
    which every spawned unit decides (by walking head 1 over the
    previous runs and using the ≅_B test against head 2) whether its
    loaded tuple is new; new tuples are recorded in the [probe]
    register, the extra tuple is erased, and the probe units collapse
    back into one.  If the merged [probe] register is empty the tape
    already carries all of Cᵢ ("hence it can stop its loading");
    otherwise one more load extends the tape, units that drew an
    already-present tuple erase their tapes and halt (they collapse
    away at the end), and the round repeats.  Finally the tape's tuples
    are stored into [out] and erased, so all surviving units collapse
    to a single one with an empty tape.

    [probe] and [out] must be distinct scratch registers (≥ the number
    of input relations). *)

val complement : out:int -> probe:int -> rel:int -> Gm.spec
(** Output = [Tⁿ − C_rel] for a rank-2 relation — the GM_hs counterpart
    of the QL_hs term [¬Rel].  Built from two offspring loads (covering
    [T²] through the tree) and a probe round per candidate: each
    candidate representative is compared, via the ≅_B test, against
    every representative of [rel]; the probe register collects hits, and
    after the probe units collapse, an empty probe means "not in the
    relation" and the candidate is stored.  Negation-by-probe is the
    same manoeuvre the Theorem 5.1 loading protocol uses to detect
    completion. *)
