open Prelude

type cell = Blank | Sym of int | Elem of int
type head = H1 | H2
type direction = Left | Right

type simple =
  | Write of cell
  | Move of head * direction
  | Seek of head * [ `Start | `Last_run | `Next_run ]
  | Truncate

type source = From_rel of int | Offspring

type act =
  | Step of simple list * int
  | Load of source * int
  | Store of int * int
  | Clear of int * int
  | Halt

type view = {
  state : int;
  cell1 : cell;
  cell2 : cell;
  tuple1 : Tuple.t option;
  tuple2 : Tuple.t option;
  cells_equal : bool option;
  tuples_equivalent : bool option;
  heads_equal : bool;
  store_empty : bool array;
}

type spec = { nstores : int; start : int; delta : view -> act }

type unit_gm = {
  ustate : int;
  tape : cell array;
  h1 : int;
  h2 : int;
  store : Tupleset.t array;
}

type result = {
  units : unit_gm list;
  steps : int;
  peak_units : int;
  collapses : int;
}

(* ------------------------------------------------------------------ *)
(* Tape helpers                                                       *)

let trim_trailing_blanks tape =
  let n = Array.length tape in
  let rec last i = if i >= 0 && tape.(i) = Blank then last (i - 1) else i in
  let l = last (n - 1) in
  if l = n - 1 then tape else Array.sub tape 0 (l + 1)

let clamp_heads u =
  let n = Array.length u.tape in
  { u with h1 = max 0 (min u.h1 n); h2 = max 0 (min u.h2 n) }

let normalize u = clamp_heads { u with tape = trim_trailing_blanks u.tape }

let cell_at tape i = if i >= 0 && i < Array.length tape then tape.(i) else Blank

let run_at tape i =
  (* Maximal run of Elem cells starting at position i. *)
  let n = Array.length tape in
  let rec collect j acc =
    if j < n then
      match tape.(j) with
      | Elem x -> collect (j + 1) (x :: acc)
      | Blank | Sym _ -> List.rev acc
    else List.rev acc
  in
  match cell_at tape i with
  | Elem _ -> Some (Tuple.of_list (collect i []))
  | Blank | Sym _ -> None

(* Start position of the last maximal Elem-run on the tape. *)
let last_run_start tape =
  let n = Array.length tape in
  let rec find_last i current last =
    if i >= n then last
    else
      match tape.(i) with
      | Elem _ ->
          let start = match current with Some s -> s | None -> i in
          find_last (i + 1) (Some start) (Some start)
      | Blank | Sym _ -> find_last (i + 1) None last
  in
  find_last 0 None None

let truncate_last_run tape =
  match last_run_start tape with
  | None -> trim_trailing_blanks tape
  | Some s -> trim_trailing_blanks (Array.sub tape 0 s)

let write_at tape i c =
  let n = Array.length tape in
  if i < n then begin
    let t = Array.copy tape in
    t.(i) <- c;
    t
  end
  else begin
    let t = Array.make (i + 1) Blank in
    Array.blit tape 0 t 0 n;
    t.(i) <- c;
    t
  end

let append_separated tape elems =
  let suffix = Blank :: List.map (fun x -> Elem x) elems in
  Array.append tape (Array.of_list suffix)

(* ------------------------------------------------------------------ *)
(* Observation and actions                                            *)

let observe t u =
  let c1 = cell_at u.tape u.h1 and c2 = cell_at u.tape u.h2 in
  let t1 = run_at u.tape u.h1 and t2 = run_at u.tape u.h2 in
  {
    state = u.ustate;
    cell1 = c1;
    cell2 = c2;
    tuple1 = t1;
    tuple2 = t2;
    cells_equal =
      (match (c1, c2) with
      | Elem x, Elem y -> Some (x = y)
      | _ -> None);
    tuples_equivalent =
      (match (t1, t2) with
      | Some a, Some b ->
          Some (Tuple.rank a = Tuple.rank b && Hs.Hsdb.equiv t a b)
      | _ -> None);
    heads_equal = u.h1 = u.h2;
    store_empty = Array.map Tupleset.is_empty u.store;
  }

let apply_simple u = function
  | Write c -> { u with tape = write_at u.tape u.h1 c }
  | Move (H1, Left) -> { u with h1 = max 0 (u.h1 - 1) }
  | Move (H1, Right) -> { u with h1 = u.h1 + 1 }
  | Move (H2, Left) -> { u with h2 = max 0 (u.h2 - 1) }
  | Move (H2, Right) -> { u with h2 = u.h2 + 1 }
  | Seek (h, `Start) -> if h = H1 then { u with h1 = 0 } else { u with h2 = 0 }
  | Seek (h, `Last_run) -> begin
      match last_run_start u.tape with
      | None -> if h = H1 then { u with h1 = 0 } else { u with h2 = 0 }
      | Some s -> if h = H1 then { u with h1 = s } else { u with h2 = s }
    end
  | Seek (h, `Next_run) ->
      let n = Array.length u.tape in
      let from = if h = H1 then u.h1 else u.h2 in
      (* Skip the current run, if any, then find the next one. *)
      let rec skip_run i =
        if i < n then
          match u.tape.(i) with Elem _ -> skip_run (i + 1) | _ -> i
        else i
      in
      let rec find i =
        if i >= n then n
        else match u.tape.(i) with Elem _ -> i | _ -> find (i + 1)
      in
      let dest = find (skip_run from) in
      if h = H1 then { u with h1 = dest } else { u with h2 = dest }
  | Truncate ->
      { u with tape = truncate_last_run u.tape; h1 = 0; h2 = 0 }

exception Bad_program of string

(* One synchronous step of one unit; returns its (possibly spawned)
   successor units. *)
let step_unit spec t u =
    match spec.delta (observe t u) with
    | Halt -> [ { u with ustate = -1 } ]
    | Step (simples, q) ->
        let u' = List.fold_left apply_simple u simples in
        [ normalize { u' with ustate = q } ]
    | Clear (reg, q) ->
        if reg < 0 || reg >= Array.length u.store then
          raise (Bad_program "Clear register out of range");
        let store = Array.copy u.store in
        store.(reg) <- Tupleset.empty;
        [ normalize { u with store; ustate = q } ]
    | Store (reg, q) -> begin
        match run_at u.tape u.h1 with
        | None -> raise (Bad_program "Store with no current tuple")
        | Some tuple ->
            let rep = Hs.Hsdb.representative t tuple in
            let store = Array.copy u.store in
            if reg < 0 || reg >= Array.length store then
              raise (Bad_program "Store register out of range");
            store.(reg) <- Tupleset.add rep store.(reg);
            [ normalize { u with store; ustate = q } ]
      end
    | Load (src, q) ->
        let tuples =
          match src with
          | From_rel reg ->
              if reg < 0 || reg >= Array.length u.store then
                raise (Bad_program "Load register out of range");
              Tupleset.elements u.store.(reg)
          | Offspring ->
              (* With no current tuple, load the offspring of the tree
                 root — the rank-1 representatives. *)
              let tuple =
                match run_at u.tape u.h1 with
                | Some tuple -> tuple
                | None -> Tuple.empty
              in
              let p = Hs.Hsdb.representative t tuple in
              List.map (Tuple.append p) (Hs.Hsdb.children t p)
        in
        List.map
          (fun tuple ->
            normalize
              {
                u with
                tape = append_separated u.tape (Array.to_list tuple);
                ustate = q;
              })
          tuples

let is_halted u = u.ustate = -1

let collapse units =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun u ->
      let key = (u.ustate, Array.to_list u.tape, u.h1, u.h2) in
      match Hashtbl.find_opt table key with
      | None ->
          Hashtbl.add table key u;
          order := key :: !order
      | Some existing ->
          Hashtbl.replace table key
            {
              existing with
              store = Array.map2 Tupleset.union existing.store u.store;
            })
    units;
  List.rev_map (fun key -> Hashtbl.find table key) !order

let run spec t ~fuel =
  let db_type = Hs.Hsdb.db_type t in
  let k = Array.length db_type in
  let initial_store =
    Array.init (k + spec.nstores) (fun i ->
        if i < k then Hs.Hsdb.reps t i else Tupleset.empty)
  in
  let start =
    { ustate = spec.start; tape = [||]; h1 = 0; h2 = 0; store = initial_store }
  in
  let rec loop units steps peak collapses fuel =
    if List.for_all is_halted units then
      Some { units; steps; peak_units = peak; collapses }
    else if fuel <= 0 then None
    else begin
      let stepped =
        List.concat_map
          (fun u ->
            if is_halted u then [ u ]
            else
              step_unit spec t u)
          units
      in
      let merged = collapse stepped in
      let removed = List.length stepped - List.length merged in
      loop merged (steps + 1)
        (max peak (List.length merged))
        (collapses + removed) (fuel - 1)
    end
  in
  loop [ start ] 0 1 0 fuel

let output result ~reg =
  match result.units with
  | [ u ] when is_halted u && Array.length u.tape = 0 ->
      if reg >= 0 && reg < Array.length u.store then Some u.store.(reg)
      else None
  | _ -> None
