open Gm

let output_reg db = Array.length (Hs.Hsdb.db_type db)

let bad state = raise (Bad_program (Printf.sprintf "unexpected state %d" state))

let load_relation ~out ~rel =
  let delta v =
    match v.state with
    | 0 -> Load (From_rel rel, 1)
    | 1 -> Step ([ Seek (H1, `Last_run) ], 2)
    | 2 -> Store (out, 3)
    | 3 -> Step ([ Truncate ], 4)
    | 4 -> Halt
    | s -> bad s
  in
  { nstores = 1 + out; start = 0; delta }

let union ~out ~rel1 ~rel2 =
  let delta v =
    match v.state with
    | 0 -> Load (From_rel rel1, 1)
    | 1 -> Step ([ Seek (H1, `Last_run) ], 2)
    | 2 -> Store (out, 3)
    | 3 -> Step ([ Truncate ], 4)
    | 4 -> Load (From_rel rel2, 5)
    | 5 -> Step ([ Seek (H1, `Last_run) ], 6)
    | 6 -> Store (out, 7)
    | 7 -> Step ([ Truncate ], 8)
    | 8 -> Halt
    | s -> bad s
  in
  { nstores = 1 + out; start = 0; delta }

let inter_by_equiv ~out ~rel1 ~rel2 =
  let delta v =
    match v.state with
    | 0 -> Load (From_rel rel1, 1)
    | 1 -> Step ([ Seek (H1, `Last_run) ], 2)
    | 2 -> Load (From_rel rel2, 3)
    | 3 -> Step ([ Seek (H2, `Last_run) ], 4)
    | 4 -> begin
        (* The §5 transition condition 4: "is u ≅_B v?" on the tuples
           under the two heads. *)
        match v.tuples_equivalent with
        | Some true -> Store (out, 5)
        | Some false -> Step ([], 5)
        | None -> raise (Bad_program "missing tuples for the ≅ test")
      end
    | 5 -> Step ([ Truncate ], 6)
    | 6 -> Step ([ Truncate ], 7)
    | 7 -> Halt
    | s -> bad s
  in
  { nstores = 1 + out; start = 0; delta }

let up ~out ~rel =
  let delta v =
    match v.state with
    | 0 -> Load (From_rel rel, 1)
    | 1 -> Step ([ Seek (H1, `Last_run) ], 2)
    | 2 -> Load (Offspring, 3)
    | 3 -> Step ([ Seek (H1, `Last_run) ], 4)
    | 4 -> Store (out, 5)
    | 5 -> Step ([ Truncate ], 6)
    | 6 -> Step ([ Truncate ], 7)
    | 7 -> Halt
    | s -> bad s
  in
  { nstores = 1 + out; start = 0; delta }

let load_all ~out ~probe ~rel =
  if out = probe then invalid_arg "Gm_programs.load_all: out = probe";
  let delta v =
    match v.state with
    (* outer loop entry: reset the probe register *)
    | 0 -> Clear (probe, 1)
    (* probe round: load one more tuple *)
    | 1 -> Load (From_rel rel, 2)
    | 2 -> Step ([ Seek (H2, `Last_run); Seek (H1, `Start) ], 3)
    (* walk head 1 over the previous runs, comparing with the loaded
       tuple under head 2 *)
    | 3 ->
        if v.heads_equal then Step ([], 4) (* reached the end: new *)
        else if v.tuples_equivalent = Some true then Step ([], 5) (* old *)
        else Step ([ Seek (H1, `Next_run) ], 3)
    | 4 -> Store (probe, 5)
    (* erase the probe tuple; all probe units now collapse *)
    | 5 -> Step ([ Truncate ], 6)
    | 6 -> if v.store_empty.(probe) then Step ([], 10) else Step ([], 7)
    (* extension round: commit one genuinely new tuple to the tape *)
    | 7 -> Load (From_rel rel, 8)
    | 8 -> Step ([ Seek (H2, `Last_run); Seek (H1, `Start) ], 9)
    | 9 ->
        if v.heads_equal then Step ([], 0) (* new: keep it, next round *)
        else if v.tuples_equivalent = Some true then Step ([], 12) (* old *)
        else Step ([ Seek (H1, `Next_run) ], 9)
    (* old tuple drawn in the extension round: erase everything and
       halt; these units collapse into the final answer at the end *)
    | 12 -> Step ([ Truncate; Seek (H1, `Last_run) ], 13)
    | 13 ->
        if v.tuple1 = None then Halt
        else Step ([ Truncate; Seek (H1, `Last_run) ], 13)
    (* output phase: pop the tape's runs into the output register *)
    | 10 -> Step ([ Seek (H1, `Last_run) ], 11)
    | 11 -> if v.tuple1 = None then Halt else Store (out, 15)
    | 15 -> Step ([ Truncate; Seek (H1, `Last_run) ], 11)
    | s -> bad s
  in
  { nstores = 1 + max out probe; start = 0; delta }

let complement ~out ~probe ~rel =
  if out = probe then invalid_arg "Gm_programs.complement: out = probe";
  let delta v =
    match v.state with
    (* cover T^2: two offspring loads from the root *)
    | 0 -> Load (Offspring, 1)
    | 1 -> Step ([ Seek (H1, `Last_run) ], 2)
    | 2 -> Load (Offspring, 3)
    | 3 -> Step ([ Seek (H1, `Last_run) ], 4)
    (* probe: is the candidate (under head 1) equivalent to any
       representative of rel? *)
    | 4 -> Clear (probe, 5)
    | 5 -> Load (From_rel rel, 6)
    | 6 -> Step ([ Seek (H2, `Last_run) ], 7)
    | 7 -> begin
        match v.tuples_equivalent with
        | Some true -> Store (probe, 8)
        | Some false -> Step ([], 8)
        | None -> raise (Bad_program "missing tuples for the ≅ test")
      end
    | 8 -> Step ([ Truncate; Seek (H1, `Last_run) ], 9)
    (* probe units have collapsed; an empty probe means the candidate is
       outside the relation *)
    | 9 -> if v.store_empty.(probe) then Store (out, 10) else Step ([], 10)
    (* erase the candidate (and the leftover rank-1 prefix) and halt *)
    | 10 -> Step ([ Truncate ], 11)
    | 11 -> Step ([ Truncate ], 12)
    | 12 -> Halt
    | s -> bad s
  in
  { nstores = 1 + max out probe; start = 0; delta }
