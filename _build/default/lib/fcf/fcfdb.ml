open Prelude

type t = {
  name : string;
  rels : Fcf.t array;
  df : int list;
  autos : int array list Lazy.t;
}

(* Permutations of df (as arrays over df positions) preserving every
   relation's finite part. *)
let compute_autos rels df =
  let df_arr = Array.of_list df in
  let n = Array.length df_arr in
  let index_of x =
    let rec go i = if df_arr.(i) = x then i else go (i + 1) in
    go 0
  in
  let finite_part r =
    match r with
    | Fcf.Finite { tuples; _ } -> tuples
    | Fcf.Cofinite { complement; _ } -> complement
  in
  let preserves sigma =
    Array.for_all
      (fun r ->
        let part = finite_part r in
        Tupleset.for_all
          (fun u ->
            let v = Array.map (fun x -> df_arr.(sigma.(index_of x))) u in
            Tupleset.mem v part)
          part)
      rels
  in
  List.filter_map
    (fun p ->
      let sigma = Array.of_list p in
      if preserves sigma then Some sigma else None)
    (Combinat.permutations (Ints.range 0 n))

let make ?(name = "fcf") rels =
  let rels = Array.of_list rels in
  let df =
    Array.fold_left
      (fun acc r -> List.sort_uniq compare (Fcf.constants r @ acc))
      [] rels
  in
  { name; rels; df; autos = lazy (compute_autos rels df) }

let relations t = t.rels
let db_type t = Array.map Fcf.rank t.rels
let df t = t.df
let automorphisms t = Lazy.force t.autos

let equiv t u v =
  Tuple.rank u = Tuple.rank v
  && Tuple.equality_pattern u = Tuple.equality_pattern v
  &&
  let df_arr = Array.of_list t.df in
  let pos x =
    let rec go i =
      if i >= Array.length df_arr then None
      else if df_arr.(i) = x then Some i
      else go (i + 1)
    in
    go 0
  in
  List.exists
    (fun sigma ->
      let ok = ref true in
      Array.iteri
        (fun i x ->
          match pos x with
          | Some px ->
              if v.(i) <> df_arr.(sigma.(px)) then ok := false
          | None -> if pos v.(i) <> None then ok := false)
        u;
      !ok)
    (automorphisms t)

let to_rdb t =
  let rels =
    Array.mapi
      (fun i r ->
        Rdb.Relation.make
          ~name:(Printf.sprintf "R%d" (i + 1))
          ~arity:(Fcf.rank r)
          (fun u -> Fcf.mem r u))
      t.rels
  in
  Rdb.Database.make ~name:t.name rels

let to_hsdb t =
  let db = to_rdb t in
  let children u =
    let used = Tuple.distinct_elements u in
    let unused_df = List.filter (fun d -> not (List.mem d used)) t.df in
    let fresh_outside =
      let rec go y =
        if (not (List.mem y t.df)) && not (List.mem y used) then y
        else go (y + 1)
      in
      go 0
    in
    Hs.Hsdb.dedupe_extensions ~equiv:(equiv t) u
      (used @ unused_df @ [ fresh_outside ])
  in
  Hs.Hsdb.make ~name:(t.name ^ "-hs") ~db ~children ~equiv:(equiv t) ()

let df_from_tree ?(max_rank = 8) hs =
  let all_distinct u =
    List.length (Tuple.distinct_elements u) = Tuple.rank u
  in
  let condition d =
    all_distinct d
    &&
    let elems = Array.to_list d in
    let fresh =
      List.filter (fun a -> not (List.mem a elems)) (Hs.Hsdb.children hs d)
    in
    List.length fresh = 1
  in
  let rec go n =
    if n > max_rank then None
    else
      match List.find_opt condition (Hs.Hsdb.paths hs n) with
      | Some d -> Some (List.sort compare (Array.to_list d))
      | None -> go (n + 1)
  in
  go 0
