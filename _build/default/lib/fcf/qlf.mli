(** QL_f+ — the finite/co-finite variant of QL (§4, Proposition 4.3).

    The syntax is QL plus [while |Y| < ∞ do P]; values are
    finite/co-finite relations with their indicator.  The changed
    operations are [e↑ = e × Df] (defined only for finite [e]) and
    [E = {(a, a) | a ∈ Df}]; everything else is computed on finite parts
    with the indicator ("¬e is computed by simply flipping the
    indicator").

    The output convention of §4 — [Y1] holds the finite part and [Y2]
    holds [{()}] iff the answer is co-finite — is what {!output}
    implements. *)

val algebra : Fcfdb.t -> Fcf.t Ql.Ql_interp.algebra

val run : Fcfdb.t -> fuel:int -> Ql.Ql_ast.program -> Fcf.t Ql.Ql_interp.outcome

val eval_term : Fcfdb.t -> Ql.Ql_ast.term -> Fcf.t
(** Evaluate a closed term. *)

val output : Fcf.t Ql.Ql_interp.outcome -> (Prelude.Tupleset.t * bool) option
(** The §4 answer convention: [(finite part, is_cofinite)] of [Y1];
    [None] if the program did not halt cleanly. *)
