lib/fcf/fcf.mli: Format Prelude
