lib/fcf/qlf.ml: Array Fcf Fcfdb List Prelude Printf Ql Tupleset
