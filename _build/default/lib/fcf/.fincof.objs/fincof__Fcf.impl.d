lib/fcf/fcf.ml: Array Format List Prelude Printf Ql Tuple Tupleset
