lib/fcf/fcfdb.mli: Fcf Hs Prelude Rdb
