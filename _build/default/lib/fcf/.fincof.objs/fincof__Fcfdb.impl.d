lib/fcf/fcfdb.ml: Array Combinat Fcf Hs Ints Lazy List Prelude Printf Rdb Tuple Tupleset
