lib/fcf/qlf.mli: Fcf Fcfdb Prelude Ql
