open Prelude

type t =
  | Finite of { rank : int; tuples : Tupleset.t }
  | Cofinite of { rank : int; complement : Tupleset.t }

let check_ranks ~rank s =
  Tupleset.iter
    (fun u ->
      if Tuple.rank u <> rank then invalid_arg "Fcf: tuple rank mismatch")
    s

let finite ~rank tuples =
  check_ranks ~rank tuples;
  Finite { rank; tuples }

let cofinite ~rank complement =
  check_ranks ~rank complement;
  if rank = 0 then
    (* D⁰ = {()} is finite; normalize. *)
    Finite
      { rank = 0; tuples = Tupleset.diff (Tupleset.singleton [||]) complement }
  else Cofinite { rank; complement }

let empty ~rank = Finite { rank; tuples = Tupleset.empty }
let full ~rank = cofinite ~rank Tupleset.empty

let rank = function Finite { rank; _ } | Cofinite { rank; _ } -> rank
let is_finite_rel = function Finite _ -> true | Cofinite _ -> false

let mem t u =
  match t with
  | Finite { tuples; _ } -> Tupleset.mem u tuples
  | Cofinite { rank; complement } ->
      Tuple.rank u = rank && not (Tupleset.mem u complement)

let is_empty = function
  | Finite { tuples; _ } -> Tupleset.is_empty tuples
  | Cofinite _ -> false

let is_single = function
  | Finite { tuples; _ } -> Tupleset.cardinal tuples = 1
  | Cofinite _ -> false

let complement = function
  | Finite { rank; tuples } -> cofinite ~rank tuples
  | Cofinite { rank; complement } -> Finite { rank; tuples = complement }

let rank_mismatch a b =
  raise
    (Ql.Ql_interp.Rank_error
       (Printf.sprintf "fcf operation on ranks %d and %d" (rank a) (rank b)))

let check_compatible a b =
  match (a, b) with
  | Finite { tuples; _ }, _ when Tupleset.is_empty tuples -> ()
  | _, Finite { tuples; _ } when Tupleset.is_empty tuples -> ()
  | _ -> if rank a <> rank b then rank_mismatch a b

let inter a b =
  check_compatible a b;
  match (a, b) with
  | Finite fa, Finite fb ->
      if Tupleset.is_empty fa.tuples || Tupleset.is_empty fb.tuples then
        empty ~rank:(max fa.rank fb.rank)
      else Finite { rank = fa.rank; tuples = Tupleset.inter fa.tuples fb.tuples }
  | Finite fa, Cofinite cb ->
      Finite { rank = fa.rank; tuples = Tupleset.diff fa.tuples cb.complement }
  | Cofinite ca, Finite fb ->
      Finite { rank = fb.rank; tuples = Tupleset.diff fb.tuples ca.complement }
  | Cofinite ca, Cofinite cb ->
      Cofinite
        { rank = ca.rank; complement = Tupleset.union ca.complement cb.complement }

let union a b = complement (inter (complement a) (complement b))
let diff a b = inter a (complement b)

let drop_first = function
  | Finite { rank; tuples } ->
      if rank < 1 then raise (Ql.Ql_interp.Rank_error "↓ on rank 0");
      Finite
        {
          rank = rank - 1;
          tuples =
            Tupleset.fold
              (fun u acc -> Tupleset.add (Tuple.drop_first u) acc)
              tuples Tupleset.empty;
        }
  | Cofinite { rank; _ } ->
      if rank < 1 then raise (Ql.Ql_interp.Rank_error "↓ on rank 0");
      (* Proposition 4.2: the projection of a co-finite relation is all of
         D^{n-1}. *)
      full ~rank:(rank - 1)

let swap_last t =
  let swap_set s =
    Tupleset.fold
      (fun u acc -> Tupleset.add (Tuple.swap_last_two u) acc)
      s Tupleset.empty
  in
  match t with
  | Finite { rank; tuples } ->
      if rank < 2 then raise (Ql.Ql_interp.Rank_error "~ on rank < 2");
      Finite { rank; tuples = swap_set tuples }
  | Cofinite { rank; complement } ->
      if rank < 2 then raise (Ql.Ql_interp.Rank_error "~ on rank < 2");
      Cofinite { rank; complement = swap_set complement }

let product_df t ~df =
  match t with
  | Cofinite _ ->
      raise (Ql.Ql_interp.Rank_error "↑ is defined only for finite relations")
  | Finite { rank; tuples } ->
      Finite
        {
          rank = rank + 1;
          tuples =
            Tupleset.fold
              (fun u acc ->
                List.fold_left
                  (fun acc d -> Tupleset.add (Tuple.append u d) acc)
                  acc df)
              tuples Tupleset.empty;
        }

let constants t =
  let s =
    match t with
    | Finite { tuples; _ } -> tuples
    | Cofinite { complement; _ } -> complement
  in
  Tupleset.fold
    (fun u acc -> List.sort_uniq compare (Array.to_list u @ acc))
    s []

let equal a b =
  match (a, b) with
  | Finite fa, Finite fb ->
      (Tupleset.is_empty fa.tuples && Tupleset.is_empty fb.tuples)
      || (fa.rank = fb.rank && Tupleset.equal fa.tuples fb.tuples)
  | Cofinite ca, Cofinite cb ->
      ca.rank = cb.rank && Tupleset.equal ca.complement cb.complement
  | _ -> false

let pp ppf = function
  | Finite { rank; tuples } ->
      Format.fprintf ppf "finite[%d]%a" rank Tupleset.pp tuples
  | Cofinite { rank; complement } ->
      Format.fprintf ppf "cofinite[%d]~%a" rank Tupleset.pp complement
