(** Finite/co-finite recursive databases (Definition 4.1) and the
    Proposition 4.1 equivalence with highly symmetric databases.

    [Df] is the set of constants appearing in the finite parts of the
    relations; automorphisms are exactly the permutations that restrict
    to an automorphism of the finite structure on [Df] and act
    arbitrarily on the (interchangeable) elements outside it. *)

type t

val make : ?name:string -> Fcf.t list -> t
(** An fcf-r-db from its relations (with indicators). *)

val relations : t -> Fcf.t array
val db_type : t -> int array

val df : t -> int list
(** The constants of the finite parts, sorted. *)

val automorphisms : t -> int array list
(** The automorphisms of the finite structure on [Df], as arrays indexed
    by position in [df t].  Computed by brute force — keep [Df] small. *)

val equiv : t -> Prelude.Tuple.t -> Prelude.Tuple.t -> bool
(** [≅_B], decided from the finite parts only ("the isomorphisms of a
    fcf-r-db can be computed by using only the finite parts"). *)

val to_rdb : t -> Rdb.Database.t
(** The underlying recursive database. *)

val to_hsdb : t -> Hs.Hsdb.t
(** Proposition 4.1, first direction: every fcf-r-db is an hs-r-db; the
    characteristic tree uses the actual [Df] constants as labels for the
    classes that touch the finite parts. *)

val df_from_tree : ?max_rank:int -> Hs.Hsdb.t -> int list option
(** Proposition 4.1, second direction: recover [Df] from a characteristic
    tree by the proof's criterion — the shortest path [d] of pairwise
    distinct labels such that exactly one offspring of [d] is a fresh
    element; its labels are [Df].  Returns [None] if no such path exists
    up to [max_rank] (default 8), e.g. when the database is not
    finite/co-finite. *)
