open Prelude

let algebra t =
  let df = Fcfdb.df t in
  let e_const () =
    Fcf.finite ~rank:2
      (List.fold_left
         (fun acc a -> Tupleset.add [| a; a |] acc)
         Tupleset.empty df)
  in
  let rel i =
    let rels = Fcfdb.relations t in
    if i < 0 || i >= Array.length rels then
      raise (Ql.Ql_interp.Rank_error (Printf.sprintf "no relation Rel%d" (i + 1)));
    rels.(i)
  in
  {
    Ql.Ql_interp.e_const;
    rel;
    inter = Fcf.inter;
    comp = Fcf.complement;
    up = (fun v -> Fcf.product_df v ~df);
    down = Fcf.drop_first;
    swap = Fcf.swap_last;
    initial = Fcf.empty ~rank:0;
    is_empty = Fcf.is_empty;
    is_single = Fcf.is_single;
    is_finite = Some Fcf.is_finite_rel;
  }

let run t ~fuel program = Ql.Ql_interp.run ~algebra:(algebra t) ~fuel program

let eval_term t e = Ql.Ql_interp.eval_term ~algebra:(algebra t) ~store:[||] e

let output = function
  | Ql.Ql_interp.Halted store -> begin
      match store.(0) with
      | Fcf.Finite { tuples; _ } -> Some (tuples, false)
      | Fcf.Cofinite { complement; _ } -> Some (complement, true)
    end
  | Ql.Ql_interp.Timeout | Ql.Ql_interp.Ill_formed _ -> None
