(** Finite/co-finite relations over the infinite domain ℕ (§4).

    A finite relation is represented by its tuples; a co-finite one by
    its finite complement and "a special indicator" — here, the
    constructor.  Rank 0 is normalized to the finite representation
    (D⁰ = [{()}] is itself finite), so values admit a canonical form
    and structural equality agrees with semantic equality except for the
    rank of empty relations (see {!equal}). *)

type t = private
  | Finite of { rank : int; tuples : Prelude.Tupleset.t }
  | Cofinite of { rank : int; complement : Prelude.Tupleset.t }

val finite : rank:int -> Prelude.Tupleset.t -> t
val cofinite : rank:int -> Prelude.Tupleset.t -> t
(** [cofinite ~rank c] is [Dⁿ − c].  At rank 0 the result is normalized
    to a finite value. *)

val empty : rank:int -> t
val full : rank:int -> t
val rank : t -> int

val is_finite_rel : t -> bool
(** The [|Y| < ∞] test of QL_f+. *)

val mem : t -> Prelude.Tuple.t -> bool
val is_empty : t -> bool
val is_single : t -> bool

val complement : t -> t
(** Flip the indicator (¬e "is computed by simply flipping the indicator
    from present to absent and vice versa"). *)

val inter : t -> t -> t
(** e ∩ f, by the §4 case analysis (e.g. finite ∩ co-finite "is computed
    as e − (¬f)").  Raises [Ql.Ql_interp.Rank_error] on rank mismatch
    (empty finite values are rank-polymorphic). *)

val union : t -> t -> t
val diff : t -> t -> t

val drop_first : t -> t
(** The projection e↓ (out the first coordinate).  On finite relations,
    the image; on co-finite ones, Proposition 4.2: the result is all of
    [D^{n-1}] — finite for n = 1 and co-finite otherwise. *)

val swap_last : t -> t
(** e~ (exchange the two rightmost coordinates) — a bijection of [Dⁿ],
    so it acts on either representation. *)

val product_df : t -> df:int list -> t
(** The QL_f+ cylindrification [e↑ = e × Df], defined only for finite
    [e] (§4: "is defined only if e is finite"); raises
    [Ql.Ql_interp.Rank_error] otherwise. *)

val constants : t -> int list
(** The constants appearing in the finite part (tuples or complement),
    sorted — the ingredients of [Df]. *)

val equal : t -> t -> bool
(** Semantic equality, treating empty finite relations of any recorded
    rank alike. *)

val pp : Format.formatter -> t -> unit
