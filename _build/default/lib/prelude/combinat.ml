let index_vectors ~width ~bound =
  if width < 0 then invalid_arg "Combinat.index_vectors: negative width";
  if width = 0 then [ [||] ]
  else if bound <= 0 then []
  else begin
    let acc = ref [] in
    let v = Array.make width 0 in
    let rec fill i =
      if i = width then acc := Array.copy v :: !acc
      else
        for x = 0 to bound - 1 do
          v.(i) <- x;
          fill (i + 1)
        done
    in
    fill 0;
    List.rev !acc
  end

let fold_cartesian f init ~width ~bound =
  if width < 0 then invalid_arg "Combinat.fold_cartesian: negative width";
  if width = 0 then f init [||]
  else if bound <= 0 then init
  else begin
    let v = Array.make width 0 in
    let acc = ref init in
    let rec fill i =
      if i = width then acc := f !acc v
      else
        for x = 0 to bound - 1 do
          v.(i) <- x;
          fill (i + 1)
        done
    in
    fill 0;
    !acc
  end

let subsets l =
  let n = List.length l in
  if n > 30 then invalid_arg "Combinat.subsets: list too long";
  List.init (1 lsl n) (fun mask ->
      List.filteri (fun i _ -> (mask lsr i) land 1 = 1) l)

let sublists_of_size k l =
  let rec go k l =
    if k = 0 then [ [] ]
    else
      match l with
      | [] -> []
      | x :: rest ->
          List.map (fun s -> x :: s) (go (k - 1) rest) @ go k rest
  in
  if k < 0 then [] else go k l

let permutations l =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: rest as l -> (x :: l) :: List.map (fun s -> y :: s) (insert x rest)
  in
  List.fold_right (fun x acc -> List.concat_map (insert x) acc) l [ [] ]

let cartesian lists =
  let rec go = function
    | [] -> [ [] ]
    | l :: rest ->
        let tails = go rest in
        List.concat_map (fun x -> List.map (fun t -> x :: t) tails) l
  in
  go lists

let restricted_growth_strings n =
  if n < 0 then invalid_arg "Combinat.restricted_growth_strings: negative n";
  if n = 0 then [ [||] ]
  else begin
    let acc = ref [] in
    let p = Array.make n 0 in
    let rec fill i maxblock =
      if i = n then acc := Array.copy p :: !acc
      else
        for b = 0 to maxblock + 1 do
          p.(i) <- b;
          fill (i + 1) (max maxblock b)
        done
    in
    p.(0) <- 0;
    fill 1 0;
    List.rev !acc
  end

let num_blocks p =
  Array.fold_left (fun m b -> max m (b + 1)) 0 p

let bell n = List.length (restricted_growth_strings n)
