(** Finite sets of tuples.  Used for finite relations, QL term values
    (finite sets of representatives), and fcf relation parts. *)

include Set.S with type elt = Tuple.t

val of_lists : int list list -> t
(** Build from a list of tuples given as lists. *)

val common_rank : t -> int option
(** [common_rank s] is [Some n] if every member has rank [n] (and [s] is
    non-empty), [None] if [s] is empty.  Raises [Invalid_argument] if the
    ranks are mixed — term values in QL always share a rank. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{(1, 2); (3, 4)}] in element order. *)

val to_string : t -> string
