let cantor_pair x y =
  if x < 0 || y < 0 then invalid_arg "Ints.cantor_pair: negative argument";
  (* (x+y)² must stay within 63-bit range. *)
  if x + y > 3_000_000_000 then invalid_arg "Ints.cantor_pair: overflow";
  ((x + y) * (x + y + 1)) / 2 + y

let isqrt n =
  if n < 0 then invalid_arg "Ints.isqrt: negative argument";
  if n < 2 then n
  else begin
    (* Newton iteration on integers; converges from above. *)
    let x = ref n in
    let y = ref ((n + 1) / 2) in
    while !y < !x do
      x := !y;
      y := (!x + (n / !x)) / 2
    done;
    !x
  end

let cantor_unpair z =
  if z < 0 then invalid_arg "Ints.cantor_unpair: negative argument";
  let w = (isqrt ((8 * z) + 1) - 1) / 2 in
  let t = (w * (w + 1)) / 2 in
  let y = z - t in
  let x = w - y in
  (x, y)

let pair_list l =
  let n = List.length l in
  let body = List.fold_right (fun x acc -> cantor_pair x acc) l 0 in
  cantor_pair n body

let unpair_list z =
  let n, body = cantor_unpair z in
  let rec go n body =
    if n = 0 then []
    else
      let x, rest = cantor_unpair body in
      x :: go (n - 1) rest
  in
  go n body

let digits ~base n =
  if base < 2 then invalid_arg "Ints.digits: base < 2";
  if n < 0 then invalid_arg "Ints.digits: negative argument";
  let rec go n = if n = 0 then [] else (n mod base) :: go (n / base) in
  go n

let of_digits ~base ds =
  if base < 2 then invalid_arg "Ints.of_digits: base < 2";
  List.fold_right
    (fun d acc ->
      if acc > (max_int - d) / base then
        invalid_arg "Ints.of_digits: overflow";
      d + (base * acc))
    ds 0

let pow b e =
  if e < 0 then invalid_arg "Ints.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
    else go acc (b * b) (e asr 1)
  in
  go 1 b e

let bit i n =
  if i < 0 || n < 0 then invalid_arg "Ints.bit: negative argument";
  if i >= Sys.int_size then false else (n lsr i) land 1 = 1

let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go (hi - 1) []

let sum = List.fold_left ( + ) 0
let prod = List.fold_left ( * ) 1

module Rng = struct
  type t = { mutable state : int }

  let make seed = { state = (seed lxor 0x9E3779B9) land max_int }

  let next t =
    (* splitmix-style mixing restricted to OCaml's 63-bit ints. *)
    t.state <- (t.state + 0x1E3779B97F4A7C15) land max_int;
    let z = t.state in
    let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
    (z lxor (z lsr 31)) land max_int

  let int t bound =
    if bound <= 0 then invalid_arg "Ints.Rng.int: bound <= 0";
    next t mod bound

  let bool t = next t land 1 = 1

  let pick t = function
    | [] -> invalid_arg "Ints.Rng.pick: empty list"
    | l -> List.nth l (int t (List.length l))
end
