include Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

let of_lists ls = of_list (List.map Tuple.of_list ls)

let common_rank s =
  match choose_opt s with
  | None -> None
  | Some u ->
      let n = Tuple.rank u in
      if for_all (fun v -> Tuple.rank v = n) s then Some n
      else invalid_arg "Tupleset.common_rank: mixed ranks"

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Tuple.pp)
    (elements s)

let to_string s = Format.asprintf "%a" pp s
