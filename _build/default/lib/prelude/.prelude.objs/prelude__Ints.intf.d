lib/prelude/ints.mli:
