lib/prelude/tupleset.ml: Format List Set Tuple
