lib/prelude/combinat.ml: Array List
