lib/prelude/combinat.mli:
