lib/prelude/tuple.mli: Format
