lib/prelude/tupleset.mli: Format Set Tuple
