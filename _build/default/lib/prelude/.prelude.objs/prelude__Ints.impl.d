lib/prelude/ints.ml: List Sys
