lib/prelude/tuple.ml: Array Format Hashtbl List Stdlib
