(** Finite combinatorics used by the class-enumeration and EF-game
    machinery: index vectors, subsets, set partitions (in canonical
    restricted-growth form), permutations and Cartesian products.

    All enumerations are deterministic and duplicate-free; orders are
    documented where tests rely on them. *)

val index_vectors : width:int -> bound:int -> int array list
(** [index_vectors ~width ~bound] enumerates all vectors in
    [\[0, bound)]{^ [width]} in lexicographic order.  [width = 0] yields the
    single empty vector; [bound = 0] with positive width yields []. *)

val subsets : 'a list -> 'a list list
(** All subsets (as sublists preserving order), 2{^n} of them, in binary
    counting order with the empty set first. *)

val sublists_of_size : int -> 'a list -> 'a list list
(** [sublists_of_size k l] enumerates the k-element sublists of [l]
    preserving order. *)

val permutations : 'a list -> 'a list list
(** All permutations of a list (n! of them; callers keep n small). *)

val cartesian : 'a list list -> 'a list list
(** [cartesian \[l1; ...; lk\]] enumerates all choice lists
    [\[x1; ...; xk\]] with [xi] drawn from [li], in lexicographic order of
    positions. *)

val restricted_growth_strings : int -> int array list
(** [restricted_growth_strings n] enumerates all set partitions of
    [{0, ..., n-1}] in canonical restricted-growth form: arrays [p] of
    length [n] with [p.(0) = 0] and
    [p.(i) <= 1 + max(p.(0..i-1))].  Equal entries mean "same block".
    The count is the Bell number B(n). *)

val bell : int -> int
(** [bell n] is the Bell number B(n) (number of set partitions). *)

val num_blocks : int array -> int
(** Number of blocks of a restricted-growth partition array (0 for the
    empty partition). *)

val fold_cartesian : ('a -> int array -> 'a) -> 'a -> width:int -> bound:int -> 'a
(** [fold_cartesian f init ~width ~bound] folds [f] over all index vectors
    without materializing the list; vectors passed to [f] are reused
    buffers, so [f] must copy if it retains them. *)
