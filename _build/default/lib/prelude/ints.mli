(** Integer utilities used throughout the reproduction: Cantor pairing for
    Gödel numbering, integer square roots, base-b digit codecs, and small
    deterministic pseudo-random streams (for reproducible experiments). *)

val cantor_pair : int -> int -> int
(** [cantor_pair x y] is the Cantor pairing function
    [(x + y) * (x + y + 1) / 2 + y], a bijection ℕ² → ℕ. *)

val cantor_unpair : int -> int * int
(** Inverse of {!cantor_pair}. *)

val pair_list : int list -> int
(** Encode a list of naturals as a single natural: length paired with a
    right fold of {!cantor_pair}.  Bijective on lists of naturals. *)

val unpair_list : int -> int list
(** Inverse of {!pair_list}. *)

val isqrt : int -> int
(** [isqrt n] is the integer square root ⌊√n⌋.  Raises [Invalid_argument]
    on negative input. *)

val digits : base:int -> int -> int list
(** [digits ~base n] is the little-endian base-[base] digit list of [n]
    ([digits ~base 0 = []]).  Requires [base >= 2]. *)

val of_digits : base:int -> int list -> int
(** Inverse of {!digits}. *)

val pow : int -> int -> int
(** [pow b e] is [b]{^ [e]} for [e >= 0], with overflow unchecked. *)

val bit : int -> int -> bool
(** [bit i n] is the [i]-th bit of [n] (bit 0 least significant).
    Requires [i >= 0] and [n >= 0]. *)

val range : int -> int -> int list
(** [range lo hi] is [[lo; lo+1; ...; hi-1]] (empty if [hi <= lo]). *)

val sum : int list -> int
(** Sum of a list. *)

val prod : int list -> int
(** Product of a list (1 on empty). *)

module Rng : sig
  (** A tiny splitmix-style deterministic generator, so experiments are
      reproducible without depending on global [Random] state. *)

  type t

  val make : int -> t
  (** [make seed] creates a generator. *)

  val int : t -> int -> int
  (** [int t bound] draws a value in [\[0, bound)].  Requires [bound > 0]. *)

  val bool : t -> bool
  (** Draw a boolean. *)

  val pick : t -> 'a list -> 'a
  (** Draw a uniform element of a non-empty list. *)
end
