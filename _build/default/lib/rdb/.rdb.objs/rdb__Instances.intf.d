lib/rdb/instances.mli: Database
