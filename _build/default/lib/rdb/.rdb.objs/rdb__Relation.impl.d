lib/rdb/relation.ml: Array List Prelude Printf Tuple Tupleset
