lib/rdb/instances.ml: Array Database Float Ints List Prelude Printf Relation Tupleset
