lib/rdb/database.ml: Array List Prelude Printf Relation Tupleset
