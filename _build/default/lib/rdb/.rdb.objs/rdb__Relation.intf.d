lib/rdb/relation.mli: Prelude
