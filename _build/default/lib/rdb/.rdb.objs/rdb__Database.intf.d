lib/rdb/database.mli: Prelude Relation
