(** A zoo of concrete recursive databases used by the examples, tests and
    experiments.  Each value is a fresh database (instrumentation counters
    are per-value, so callers may measure oracle traffic independently). *)

val multiplication : unit -> Database.t
(** The §2 opening example: the recursive relation
    [{(x, y, z) | z = x·y}] (type (3)). *)

val divides : unit -> Database.t
(** [{(x, y) | x > 0 and x divides y}] (type (2)). *)

val less_than : unit -> Database.t
(** The strict order on ℕ (type (2)) — not highly symmetric. *)

val line_position : int -> int
(** The line position of node [v] under the §3 figure's coding (see
    {!successor_line}): even nodes sit at [-v/2], odd nodes at
    [(v+1)/2].  Exposed so equivalence oracles for this non-hs instance
    can be defined analytically. *)

val successor_line : unit -> Database.t
(** The two-way infinite line of §3 under the coding
    … 7–5–3–1–2–4–6 … from the paper's figure: node 0 pairs with node 1 at
    the centre.  Undirected (both directed edges present).  Recursive but
    {e not} highly symmetric. *)

val grid_position : int -> int * int
(** The ℤ²-position of node [n] in {!grid}: Cantor unpairing composed
    with zig-zag decoding of each coordinate. *)

val grid : unit -> Database.t
(** The two-dimensional grid: nodes are ℤ²-points coded into ℕ, edges
    join points at Manhattan distance 1.  The paper's §3.1 example of a
    graph that is {e not} highly symmetric ("a grid … has an infinite
    path as an induced subgraph"). *)

val infinite_clique : unit -> Database.t
(** The full infinite (irreflexive, undirected) clique — highly symmetric. *)

val empty_graph : unit -> Database.t
(** The graph with no edges — highly symmetric. *)

val mod_cliques : int -> Database.t
(** [mod_cliques m] partitions ℕ into [m] infinite cliques
    (x ~ y iff x ≡ y (mod m), x ≠ y) — highly symmetric. *)

val triangles : unit -> Database.t
(** Infinitely many disjoint triangles ({0,1,2}, {3,4,5}, …) — highly
    symmetric, the flavour of the paper's §3 example figure. *)

val rado : unit -> Database.t
(** The Rado graph via the BIT predicate: for x < y, x ~ y iff bit x of y
    is 1 (symmetrized, irreflexive).  A recursive countable random graph,
    hence highly symmetric (Proposition 3.2). *)

val paper_b1 : unit -> Database.t
(** §2: the database with R₁ = [{(a,a), (a,b)}] over a = 0, b = 1
    (type (2)) — one half of the local-vs-global isomorphism example. *)

val paper_b2 : unit -> Database.t
(** §2: the database with R₂ = [{(c,c)}] over c = 2 (type (2)). *)

val trigonometry : scale:int -> Database.t
(** The §1 motivating example: a recursive database of trigonometric
    values.  Type (2, 2): SIN = [{(d, v)}] and COS = [{(d, v)}] where [v]
    is [⌊scale·(1 + sin(d°))⌋] (resp. cos), so v ∈ [0, 2·scale].  Keeping
    rules instead of tables: membership is computed from the angle. *)

val finite_graph : (int * int) list -> Database.t
(** A finite undirected graph given by its edge list, embedded as an r-db
    of type (2) (both directions of each edge are present). *)
