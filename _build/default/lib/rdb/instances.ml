open Prelude

let graph ?name edge =
  let r =
    Relation.make ~name:"E" ~arity:2 (fun u -> edge u.(0) u.(1))
  in
  Database.make ?name [| r |]

let multiplication () =
  let r =
    Relation.make ~name:"MUL" ~arity:3 (fun u -> u.(2) = u.(0) * u.(1))
  in
  Database.make ~name:"multiplication" [| r |]

let divides () =
  let r =
    Relation.make ~name:"DIV" ~arity:2 (fun u ->
        u.(0) > 0 && u.(1) mod u.(0) = 0)
  in
  Database.make ~name:"divides" [| r |]

let less_than () = graph ~name:"less_than" (fun x y -> x < y)

(* Line position of node v under the paper's … 7 5 3 1 2 4 6 … coding,
   shifted to 0-based nodes: even v sits at -v/2, odd v at (v+1)/2. *)
let line_position v = if v mod 2 = 0 then -(v / 2) else (v + 1) / 2

let successor_line () =
  graph ~name:"line" (fun x y -> abs (line_position x - line_position y) = 1)

let zdecode n = if n mod 2 = 1 then (n + 1) / 2 else -(n / 2)

let grid_position n =
  let a, b = Ints.cantor_unpair n in
  (zdecode a, zdecode b)

let grid () =
  graph ~name:"grid" (fun m n ->
      let x1, y1 = grid_position m and x2, y2 = grid_position n in
      abs (x1 - x2) + abs (y1 - y2) = 1)

let infinite_clique () = graph ~name:"clique" (fun x y -> x <> y)
let empty_graph () = graph ~name:"empty" (fun _ _ -> false)

let mod_cliques m =
  if m <= 0 then invalid_arg "Instances.mod_cliques: m <= 0";
  graph
    ~name:(Printf.sprintf "mod%d_cliques" m)
    (fun x y -> x <> y && x mod m = y mod m)

let triangles () =
  graph ~name:"triangles" (fun x y -> x <> y && x / 3 = y / 3)

let rado () =
  let adj x y =
    if x = y then false
    else
      let lo = min x y and hi = max x y in
      Ints.bit lo hi
  in
  graph ~name:"rado" adj

let paper_b1 () =
  Database.of_finite ~name:"paper_B1" [ (2, [ [ 0; 0 ]; [ 0; 1 ] ]) ]

let paper_b2 () = Database.of_finite ~name:"paper_B2" [ (2, [ [ 2; 2 ] ]) ]

let trigonometry ~scale =
  if scale <= 0 then invalid_arg "Instances.trigonometry: scale <= 0";
  let value f d =
    let radians = float_of_int (d mod 360) *. Float.pi /. 180.0 in
    int_of_float (floor (float_of_int scale *. (1.0 +. f radians)))
  in
  let table fname f =
    Relation.make ~name:fname ~arity:2 (fun u -> u.(1) = value f u.(0))
  in
  Database.make ~name:"trigonometry" [| table "SIN" sin; table "COS" cos |]

let finite_graph edges =
  let s =
    List.concat_map (fun (x, y) -> [ [ x; y ]; [ y; x ] ]) edges
    |> Tupleset.of_lists
  in
  Database.make ~name:"finite_graph"
    [| Relation.of_tupleset ~name:"E" ~arity:2 s |]
