open Prelude

type domain = { dmem : int -> bool; dnth : int -> int }

let nat_domain = { dmem = (fun _ -> true); dnth = (fun i -> i) }

let domain_of_pred p =
  let dnth i =
    if i < 0 then invalid_arg "Database.domain: negative index";
    let rec go seen x =
      if p x then if seen = i then x else go (seen + 1) (x + 1)
      else go seen (x + 1)
    in
    go 0 0
  in
  { dmem = p; dnth }

type t = { name : string; domain : domain; rels : Relation.t array }

let make ?(name = "B") ?(domain = nat_domain) rels = { name; domain; rels }
let name b = b.name
let domain b = b.domain
let relations b = b.rels

let relation b i =
  if i < 0 || i >= Array.length b.rels then
    invalid_arg (Printf.sprintf "Database.relation: index %d out of range" i);
  b.rels.(i)

let db_type b = Array.map Relation.arity b.rels
let width b = Array.length b.rels
let mem b i u = Relation.mem (relation b i) u

let oracle_calls b =
  Array.fold_left (fun acc r -> acc + Relation.calls r) 0 b.rels

let reset_oracle_calls b = Array.iter Relation.reset_calls b.rels

let of_finite ?(name = "B") ?(domain = nat_domain) specs =
  let rels =
    List.mapi
      (fun i (arity, tuples) ->
        Relation.of_tupleset
          ~name:(Printf.sprintf "R%d" (i + 1))
          ~arity
          (Tupleset.of_lists tuples))
      specs
  in
  make ~name ~domain (Array.of_list rels)

let same_type b1 b2 = db_type b1 = db_type b2

let restrict_to b elems =
  let keep x = List.mem x elems in
  let rels =
    Array.map (fun r -> Relation.restrict r ~keep) b.rels
  in
  make ~name:(b.name ^ "|restricted") ~domain:b.domain rels
