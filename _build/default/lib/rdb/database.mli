(** Recursive relational databases (Definition 2.1): a named tuple of
    recursive relations over a countable recursive domain.

    The domain is ℕ by default; constructions that need fresh elements or
    restricted domains (Proposition 2.5, Theorem 6.1) use an explicit
    recursive subset of ℕ given by a membership test and an enumerator. *)

type domain = {
  dmem : int -> bool;  (** membership in D *)
  dnth : int -> int;  (** [dnth i] is the i-th element of D (0-based) *)
}

val nat_domain : domain
(** D = ℕ. *)

val domain_of_pred : (int -> bool) -> domain
(** Domain from a decidable predicate on ℕ (must be satisfied by infinitely
    many naturals for the enumerator to be total). *)

type t

val make : ?name:string -> ?domain:domain -> Relation.t array -> t
(** [make rels] builds an r-db of type [(arity rels.(0)), ...]. *)

val name : t -> string
val domain : t -> domain
val relations : t -> Relation.t array
val relation : t -> int -> Relation.t
(** [relation b i] is Rᵢ, 0-based.  Raises [Invalid_argument] if out of
    range. *)

val db_type : t -> int array
(** The type a = (a₁, ..., a_k) — the arities. *)

val width : t -> int
(** k, the number of relations. *)

val mem : t -> int -> Prelude.Tuple.t -> bool
(** [mem b i u] decides [u ∈ Rᵢ] through the instrumented oracle. *)

val oracle_calls : t -> int
(** Total number of oracle queries across all relations. *)

val reset_oracle_calls : t -> unit

val of_finite :
  ?name:string -> ?domain:domain -> (int * int list list) list -> t
(** [of_finite [(a1, tuples1); ...]] builds a database of finite relations;
    each relation is given by its arity and tuple list.  Finite databases
    are r-dbs, so the classical examples embed directly. *)

val same_type : t -> t -> bool
(** Whether two databases have the same type (Definition 2.2 requires it). *)

val restrict_to : t -> int list -> t
(** [restrict_to b elems] is the restriction of [b] to the given domain
    elements — used to compare restrictions in the local-isomorphism test
    (Definition 2.2(3)). *)
