exception Error of string

type token =
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | PIPE
  | AMPAMP
  | PIPEPIPE
  | BANG
  | ARROW
  | EQ
  | NEQ
  | DOT
  | IDENT of string
  | EOF

let fail pos msg = raise (Error (Printf.sprintf "at offset %d: %s" pos msg))

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '{' then (push LBRACE; incr i)
    else if c = '}' then (push RBRACE; incr i)
    else if c = '(' then (push LPAREN; incr i)
    else if c = ')' then (push RPAREN; incr i)
    else if c = ',' then (push COMMA; incr i)
    else if c = '.' then (push DOT; incr i)
    else if c = '=' then (push EQ; incr i)
    else if c = '&' then
      if !i + 1 < n && s.[!i + 1] = '&' then (push AMPAMP; i := !i + 2)
      else fail !i "expected '&&'"
    else if c = '|' then
      if !i + 1 < n && s.[!i + 1] = '|' then (push PIPEPIPE; i := !i + 2)
      else (push PIPE; incr i)
    else if c = '!' then
      if !i + 1 < n && s.[!i + 1] = '=' then (push NEQ; i := !i + 2)
      else (push BANG; incr i)
    else if c = '-' then
      if !i + 1 < n && s.[!i + 1] = '>' then (push ARROW; i := !i + 2)
      else fail !i "expected '->'"
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      push (IDENT (String.sub s start (!i - start)))
    end
    else fail !i (Printf.sprintf "unexpected character %C" c)
  done;
  push EOF;
  Array.of_list (List.rev !tokens)

let default_rels name =
  let len = String.length name in
  if len >= 2 && name.[0] = 'R' then
    match int_of_string_opt (String.sub name 1 (len - 1)) with
    | Some i when i >= 1 -> Some (i - 1)
    | _ -> None
  else None

let rels_of_database db name =
  let rels = Rdb.Database.relations db in
  let found = ref None in
  Array.iteri
    (fun i r -> if !found = None && Rdb.Relation.name r = name then found := Some i)
    rels;
  match !found with Some i -> Some i | None -> default_rels name

type state = { toks : token array; mutable pos : int; rels : string -> int option }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st t msg =
  if peek st = t then advance st else fail st.pos msg

let ident st =
  match peek st with
  | IDENT x -> advance st; x
  | _ -> fail st.pos "expected identifier"

let rec parse_formula st =
  let lhs = parse_or st in
  if peek st = ARROW then begin
    advance st;
    let rhs = parse_formula st in
    Ast.Implies (lhs, rhs)
  end
  else lhs

and parse_or st =
  let rec loop acc =
    if peek st = PIPEPIPE then begin
      advance st;
      let rhs = parse_and st in
      loop (Ast.Or (acc, rhs))
    end
    else acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    if peek st = AMPAMP then begin
      advance st;
      let rhs = parse_unary st in
      loop (Ast.And (acc, rhs))
    end
    else acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | BANG ->
      advance st;
      Ast.Not (parse_unary st)
  | IDENT "exists" ->
      advance st;
      let x = ident st in
      expect st DOT "expected '.' after quantified variable";
      Ast.Exists (x, parse_formula st)
  | IDENT "forall" ->
      advance st;
      let x = ident st in
      expect st DOT "expected '.' after quantified variable";
      Ast.Forall (x, parse_formula st)
  | IDENT "true" -> advance st; Ast.True
  | IDENT "false" -> advance st; Ast.False
  | LPAREN ->
      advance st;
      let f = parse_formula st in
      expect st RPAREN "expected ')'";
      f
  | IDENT name -> begin
      advance st;
      match peek st with
      | LPAREN ->
          advance st;
          let args =
            if peek st = RPAREN then []
            else begin
              let rec more acc =
                if peek st = COMMA then begin
                  advance st;
                  more (ident st :: acc)
                end
                else List.rev acc
              in
              more [ ident st ]
            end
          in
          expect st RPAREN "expected ')' after atom arguments";
          let rel =
            match st.rels name with
            | Some i -> i
            | None -> fail st.pos (Printf.sprintf "unknown relation %s" name)
          in
          Ast.Mem (rel, Array.of_list args)
      | EQ ->
          advance st;
          Ast.Eq (name, ident st)
      | NEQ ->
          advance st;
          Ast.Not (Ast.Eq (name, ident st))
      | _ -> fail st.pos "expected '(' or '=' or '!=' after identifier"
    end
  | _ -> fail st.pos "expected a formula"

let parse_vars st =
  expect st LPAREN "expected '(' opening the variable list";
  if peek st = RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec more acc =
      if peek st = COMMA then begin
        advance st;
        more (ident st :: acc)
      end
      else begin
        expect st RPAREN "expected ')' closing the variable list";
        List.rev acc
      end
    in
    more [ ident st ]
  end

let parse_query st =
  match peek st with
  | IDENT "undefined" ->
      advance st;
      expect st EOF "trailing input after 'undefined'";
      Ast.Undefined
  | LBRACE ->
      advance st;
      let vars = parse_vars st in
      expect st PIPE "expected '|' after the variable list";
      let body = parse_formula st in
      expect st RBRACE "expected '}' closing the query";
      expect st EOF "trailing input after query";
      Ast.Query { vars; body }
  | _ -> fail st.pos "expected 'undefined' or '{'"

let formula ?(rels = default_rels) s =
  let st = { toks = tokenize s; pos = 0; rels } in
  let f = parse_formula st in
  expect st EOF "trailing input after formula";
  f

let query ?(rels = default_rels) s =
  let st = { toks = tokenize s; pos = 0; rels } in
  parse_query st
