lib/rlogic/ast.ml: Array Format Hashtbl List
