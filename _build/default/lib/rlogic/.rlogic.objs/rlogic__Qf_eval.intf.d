lib/rlogic/qf_eval.mli: Ast Prelude Rdb
