lib/rlogic/qf_eval.ml: Array Ast Combinat List Prelude Rdb Tuple Tupleset
