lib/rlogic/ast.mli: Format
