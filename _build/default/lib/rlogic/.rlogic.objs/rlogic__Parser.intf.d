lib/rlogic/parser.mli: Ast Rdb
