lib/rlogic/parser.ml: Array Ast List Printf Rdb String
