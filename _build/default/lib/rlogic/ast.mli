(** First-order relational calculus ASTs.

    One formula type serves both languages of the paper:
    {ul
    {- L⁻ (§2): the quantifier-free fragment, complete for computable
       queries over arbitrary r-dbs (Theorem 2.1);}
    {- L (§6): full first-order logic, BP-complete for highly symmetric
       r-dbs (Theorem 6.3).}}

    Queries are set-builder expressions
    [{(x₁, ..., xₙ) | φ(x₁, ..., xₙ, R₁, ..., R_k)}], plus the special
    expression [undefined] for the everywhere-undefined query. *)

type formula =
  | True
  | False
  | Eq of string * string  (** xᵢ = xⱼ *)
  | Mem of int * string array
      (** [Mem (i, vars)]: (x_{j₁}, ..., x_{j_{aᵢ}}) ∈ Rᵢ, 0-based
          relation index.  A rank-0 relation gives [Mem (i, [||])],
          the legal atom [() ∈ R] of §2. *)
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string * formula
  | Forall of string * formula

type query =
  | Undefined  (** the special L⁻ expression [undefined] *)
  | Query of { vars : string list; body : formula }
      (** [vars] are the free variables, in output-column order; [body]
          may mention only them and quantified variables. *)

val is_quantifier_free : formula -> bool
(** Whether a formula lies in L⁻. *)

val quantifier_rank : formula -> int
(** Maximum quantifier nesting depth (the [r] of [≡_r], §3.2). *)

val free_vars : formula -> string list
(** Free variables in order of first occurrence. *)

val conj : formula list -> formula
(** Conjunction of a list ([True] on empty), right-nested. *)

val disj : formula list -> formula
(** Disjunction of a list ([False] on empty), right-nested. *)

val size : formula -> int
(** Number of AST nodes — used by enumeration experiments. *)

val pp_formula : Format.formatter -> formula -> unit
(** Prints in the concrete syntax accepted by {!Parser} ([&&], [||], [!],
    [->], [exists x.], [R1(x,y)], [x = y]). *)

val pp_query : Format.formatter -> query -> unit
val formula_to_string : formula -> string
val query_to_string : query -> string

val well_formed : db_type:int array -> query -> bool
(** Arities of all [Mem] atoms match the database type, relation indices
    are in range, and every free variable of the body is declared. *)
