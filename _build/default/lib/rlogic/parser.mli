(** Concrete syntax for L⁻ / L queries.

    Grammar (quantifier scope extends as far right as possible):
    {v
    query   ::= "undefined"
              | "{" "(" var ("," var)* ")" "|" formula "}"
              | "{" "(" ")" "|" formula "}"          (rank-0 query)
    formula ::= or_f ("->" formula)?
    or_f    ::= and_f ("||" and_f)*
    and_f   ::= unary ("&&" unary)*
    unary   ::= "!" unary
              | ("exists" | "forall") var "." formula
              | "true" | "false"
              | "(" formula ")"
              | name "(" var ("," var)* ")"  |  name "(" ")"
              | var "=" var | var "!=" var
    v}
    Relation names are resolved by the [rels] callback; the default
    resolves ["R1"], ["R2"], … to 0-based indices. *)

exception Error of string
(** Raised with a message and position on syntax errors. *)

val formula : ?rels:(string -> int option) -> string -> Ast.formula
(** Parse a bare formula. *)

val query : ?rels:(string -> int option) -> string -> Ast.query
(** Parse a query. *)

val default_rels : string -> int option
(** ["R1" ↦ Some 0], ["R7" ↦ Some 6], anything else ↦ [None]. *)

val rels_of_database : Rdb.Database.t -> string -> int option
(** Resolve relation names against a database: its relations' names first,
    then the [R<i>] fallback. *)
