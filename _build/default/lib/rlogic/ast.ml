type formula =
  | True
  | False
  | Eq of string * string
  | Mem of int * string array
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string * formula
  | Forall of string * formula

type query =
  | Undefined
  | Query of { vars : string list; body : formula }

let rec is_quantifier_free = function
  | True | False | Eq _ | Mem _ -> true
  | Not f -> is_quantifier_free f
  | And (f, g) | Or (f, g) | Implies (f, g) ->
      is_quantifier_free f && is_quantifier_free g
  | Exists _ | Forall _ -> false

let rec quantifier_rank = function
  | True | False | Eq _ | Mem _ -> 0
  | Not f -> quantifier_rank f
  | And (f, g) | Or (f, g) | Implies (f, g) ->
      max (quantifier_rank f) (quantifier_rank g)
  | Exists (_, f) | Forall (_, f) -> 1 + quantifier_rank f

let free_vars formula =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let note bound x =
    if (not (List.mem x bound)) && not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      order := x :: !order
    end
  in
  let rec go bound = function
    | True | False -> ()
    | Eq (x, y) ->
        note bound x;
        note bound y
    | Mem (_, vars) -> Array.iter (note bound) vars
    | Not f -> go bound f
    | And (f, g) | Or (f, g) | Implies (f, g) ->
        go bound f;
        go bound g
    | Exists (x, f) | Forall (x, f) -> go (x :: bound) f
  in
  go [] formula;
  List.rev !order

let conj = function
  | [] -> True
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let disj = function
  | [] -> False
  | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let rec size = function
  | True | False | Eq _ | Mem _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) | Implies (f, g) -> 1 + size f + size g
  | Exists (_, f) | Forall (_, f) -> 1 + size f

(* Precedence levels for printing with minimal parentheses:
   0 implies (right assoc), 1 or, 2 and, 3 unary, 4 atoms. *)
let rec pp_prec level ppf f =
  let open Format in
  let paren needed body =
    if needed then fprintf ppf "(%t)" body else body ppf
  in
  match f with
  | True -> pp_print_string ppf "true"
  | False -> pp_print_string ppf "false"
  | Eq (x, y) -> fprintf ppf "%s = %s" x y
  | Not (Eq (x, y)) -> fprintf ppf "%s != %s" x y
  | Mem (i, vars) ->
      fprintf ppf "R%d(%a)" (i + 1)
        (pp_print_array
           ~pp_sep:(fun ppf () -> fprintf ppf ", ")
           pp_print_string)
        vars
  | Not f -> paren (level > 3) (fun ppf -> fprintf ppf "!%a" (pp_prec 4) f)
  | And (f, g) ->
      paren (level > 2) (fun ppf ->
          fprintf ppf "%a && %a" (pp_prec 2) f (pp_prec 3) g)
  | Or (f, g) ->
      paren (level > 1) (fun ppf ->
          fprintf ppf "%a || %a" (pp_prec 1) f (pp_prec 2) g)
  | Implies (f, g) ->
      paren (level > 0) (fun ppf ->
          fprintf ppf "%a -> %a" (pp_prec 1) f (pp_prec 0) g)
  | Exists (x, f) ->
      paren (level > 0) (fun ppf -> fprintf ppf "exists %s. %a" x (pp_prec 0) f)
  | Forall (x, f) ->
      paren (level > 0) (fun ppf -> fprintf ppf "forall %s. %a" x (pp_prec 0) f)

let pp_formula ppf f = pp_prec 0 ppf f

let pp_query ppf = function
  | Undefined -> Format.pp_print_string ppf "undefined"
  | Query { vars; body } ->
      Format.fprintf ppf "{(%a) | %a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Format.pp_print_string)
        vars pp_formula body

let formula_to_string f = Format.asprintf "%a" pp_formula f
let query_to_string q = Format.asprintf "%a" pp_query q

let well_formed ~db_type = function
  | Undefined -> true
  | Query { vars; body } ->
      let declared = vars in
      let rec go bound = function
        | True | False -> true
        | Eq (x, y) -> List.mem x bound && List.mem y bound
        | Mem (i, args) ->
            i >= 0
            && i < Array.length db_type
            && Array.length args = db_type.(i)
            && Array.for_all (fun x -> List.mem x bound) args
        | Not f -> go bound f
        | And (f, g) | Or (f, g) | Implies (f, g) -> go bound f && go bound g
        | Exists (x, f) | Forall (x, f) -> go (x :: bound) f
      in
      go declared body
