(** Evaluation of L⁻ (quantifier-free) queries over r-dbs — the semantics
    of §2 — plus a naive bounded-domain evaluator for full FO used as the
    baseline in the Theorem 6.3 experiments.

    A quantifier-free formula on a bound tuple needs only finitely many
    oracle queries, which is why every L⁻ query is a recursive r-query
    (first half of Theorem 2.1). *)

exception Unbound_variable of string

val eval_formula :
  Rdb.Database.t -> env:(string * int) list -> Ast.formula -> bool
(** Evaluate a {e quantifier-free} formula under an environment binding
    variables to domain elements (later bindings shadow earlier ones).
    Raises [Invalid_argument] on quantifiers, {!Unbound_variable} on
    unbound variables. *)

val eval_bounded :
  Rdb.Database.t -> cutoff:int -> env:(string * int) list -> Ast.formula -> bool
(** Full FO evaluation with quantifiers ranging over [{0, ..., cutoff-1}].
    Not the true semantics on an infinite db — it is the approximation a
    naive evaluator must make, against which the representative-based
    evaluator of Theorem 6.3 is compared. *)

val mem : Rdb.Database.t -> Ast.query -> Prelude.Tuple.t -> bool option
(** [mem b q u]: [None] if [q] is [undefined]; otherwise [Some (u ∈ Q(B))].
    The tuple is bound positionally to the query variables; rank mismatch
    gives [Some false] only when ranks differ (a query of rank n contains
    rank-n tuples only).  Requires [q] quantifier-free. *)

val eval_upto :
  Rdb.Database.t -> Ast.query -> cutoff:int -> Prelude.Tupleset.t
(** Members of Q(B) among tuples over [{0, ..., cutoff-1}] (empty for
    [undefined]).  Requires [q] quantifier-free. *)
