(** Atomic diagrams of pairs (B, u).

    The diagram of a pair records exactly the data that the local
    isomorphism test of Proposition 2.2 inspects: the equality pattern of
    [u], and, for every relation Rᵢ and every way of indexing into [u]
    (equivalently, into the blocks of the equality pattern), whether the
    projected tuple belongs to Rᵢ.

    Two pairs are locally isomorphic — [(B₁,u) ≅ₗ (B₂,v)], Definition
    2.2(3) — iff their diagrams are equal, so diagrams are canonical names
    for the equivalence classes [C^n] of §2. *)

type t = private {
  db_type : int array;  (** the type a = (a₁, ..., a_k) *)
  pattern : int array;
      (** equality pattern of [u] in restricted-growth form; length = rank *)
  atoms : bool array array;
      (** [atoms.(i)] has [m]{^ [aᵢ]} entries ([m] = number of blocks):
          entry at mixed-radix index of a block vector [w] says whether the
          corresponding projection of [u] lies in Rᵢ *)
}

val rank : t -> int
val blocks : t -> int
(** Number of distinct elements in the underlying tuple. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val of_pair : Rdb.Database.t -> Prelude.Tuple.t -> t
(** Compute the diagram of (B, u) with finitely many oracle queries —
    [Σᵢ m]{^ [aᵢ]} of them, witnessing Proposition 2.2. *)

val atom : t -> rel:int -> int array -> bool
(** [atom d ~rel w] reads the membership bit for relation [rel] at the
    block vector [w] (entries < [blocks d], length = arity of [rel]). *)

val make :
  db_type:int array -> pattern:int array -> atoms:bool array array -> t
(** Assemble a diagram from parts (validated: pattern must be in
    restricted-growth form, atom table sizes must match). *)

val enumerate :
  ?keep:(t -> bool) -> db_type:int array -> rank:int -> unit -> t list
(** Enumerate {e all} diagrams of the given type and rank — the classes
    [C^n = {C^n_1, ..., C^n_m}] of §2 — optionally filtered by [keep]
    (e.g. restrict to irreflexive symmetric graph diagrams).  The order is
    deterministic.  §2's worked example: type (2,1), rank 2 gives 68. *)

val count : db_type:int array -> rank:int -> int
(** The closed-form count [Σ_P Πᵢ 2]{^ [|P|^aᵢ]} over equality patterns
    [P], matching [List.length (enumerate ...)]. *)

val realize : t -> Rdb.Database.t * Prelude.Tuple.t
(** A canonical concrete pair (B, u) whose diagram is the argument:
    [u = (pattern)] itself (block ids as domain elements) and finite
    relations read off the atom tables.  [of_pair (realize d) = d]. *)

val pp : Format.formatter -> t -> unit
