open Prelude

type t = { db_type : int array; pattern : int array; atoms : bool array array }

let rank d = Array.length d.pattern
let blocks d = Combinat.num_blocks d.pattern
let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b

(* Mixed-radix encoding of a block vector [w] (each entry < m). *)
let radix_index ~m w =
  Array.fold_right (fun x acc -> x + (m * acc)) w 0

let radix_decode ~m ~width idx =
  let w = Array.make width 0 in
  let rec go i idx =
    if i < width then begin
      w.(i) <- idx mod m;
      go (i + 1) (idx / m)
    end
  in
  go 0 idx;
  w

let is_rgs p =
  let n = Array.length p in
  let rec go i maxb =
    if i = n then true
    else if p.(i) < 0 || p.(i) > maxb + 1 then false
    else go (i + 1) (max maxb p.(i))
  in
  n = 0 || (p.(0) = 0 && go 1 0)

let make ~db_type ~pattern ~atoms =
  if not (is_rgs pattern) then
    invalid_arg "Diagram.make: pattern not in restricted-growth form";
  if Array.length atoms <> Array.length db_type then
    invalid_arg "Diagram.make: atom table count mismatch";
  let m = Combinat.num_blocks pattern in
  Array.iteri
    (fun i table ->
      let expect = Ints.pow m db_type.(i) in
      if Array.length table <> expect then
        invalid_arg "Diagram.make: atom table size mismatch")
    atoms;
  { db_type; pattern; atoms }

let of_pair b u =
  let db_type = Rdb.Database.db_type b in
  let pattern = Tuple.equality_pattern u in
  let m = Combinat.num_blocks pattern in
  (* A representative domain element for each block. *)
  let rep = Array.make m 0 in
  Array.iteri (fun i blk -> rep.(blk) <- u.(i)) pattern;
  let atoms =
    Array.mapi
      (fun i a ->
        let size = Ints.pow m a in
        Array.init size (fun idx ->
            let w = radix_decode ~m ~width:a idx in
            Rdb.Database.mem b i (Array.map (fun blk -> rep.(blk)) w)))
      db_type
  in
  { db_type; pattern; atoms }

let atom d ~rel w =
  let m = Combinat.num_blocks d.pattern in
  d.atoms.(rel).(radix_index ~m w)

let enumerate ?(keep = fun _ -> true) ~db_type ~rank () =
  let patterns = Combinat.restricted_growth_strings rank in
  let results = ref [] in
  List.iter
    (fun pattern ->
      let m = Combinat.num_blocks pattern in
      let sizes = Array.to_list (Array.map (fun a -> Ints.pow m a) db_type) in
      (* Enumerate every combination of boolean atom tables. *)
      let rec tables = function
        | [] -> [ [] ]
        | size :: rest ->
            let tails = tables rest in
            let all_tables =
              List.init (1 lsl size) (fun mask ->
                  Array.init size (fun j -> (mask lsr j) land 1 = 1))
            in
            List.concat_map
              (fun tbl -> List.map (fun t -> tbl :: t) tails)
              all_tables
      in
      List.iter
        (fun tbls ->
          let d = { db_type; pattern; atoms = Array.of_list tbls } in
          if keep d then results := d :: !results)
        (tables sizes))
    patterns;
  List.rev !results

let count ~db_type ~rank =
  Combinat.restricted_growth_strings rank
  |> List.map (fun p ->
         let m = Combinat.num_blocks p in
         Array.fold_left (fun acc a -> acc * Ints.pow 2 (Ints.pow m a)) 1 db_type)
  |> Ints.sum

let realize d =
  let m = Combinat.num_blocks d.pattern in
  let rels =
    Array.mapi
      (fun i a ->
        let members = ref Tupleset.empty in
        Array.iteri
          (fun idx present ->
            if present then
              members :=
                Tupleset.add (radix_decode ~m ~width:a idx) !members)
          d.atoms.(i);
        Rdb.Relation.of_tupleset ~name:(Printf.sprintf "R%d" (i + 1)) ~arity:a
          !members)
      d.db_type
  in
  (Rdb.Database.make ~name:"realized" rels, Array.copy d.pattern)

let pp ppf d =
  let m = Combinat.num_blocks d.pattern in
  Format.fprintf ppf "@[<v>pattern %a@," Tuple.pp d.pattern;
  Array.iteri
    (fun i table ->
      let a = d.db_type.(i) in
      let members =
        Array.to_list table
        |> List.mapi (fun idx present ->
               if present then Some (radix_decode ~m ~width:a idx) else None)
        |> List.filter_map Fun.id
      in
      Format.fprintf ppf "R%d: %a@," (i + 1)
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Tuple.pp)
        members)
    d.atoms;
  Format.fprintf ppf "@]"
