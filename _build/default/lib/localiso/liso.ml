open Prelude
open Rdb

let check b1 u b2 v =
  Database.same_type b1 b2
  && Tuple.rank u = Tuple.rank v
  && Tuple.equality_pattern u = Tuple.equality_pattern v
  &&
  let n = Tuple.rank u in
  let db_type = Database.db_type b1 in
  let ok = ref true in
  Array.iteri
    (fun i a ->
      if !ok then
        ok :=
          Combinat.fold_cartesian
            (fun acc js ->
              acc
              && Database.mem b1 i (Tuple.project u js)
                 = Database.mem b2 i (Tuple.project v js))
            true ~width:a ~bound:n)
    db_type;
  !ok

let check_bruteforce b1 u b2 v =
  if not (Database.same_type b1 b2) then false
  else if Tuple.rank u <> Tuple.rank v then false
  else begin
    let n = Tuple.rank u in
    (* The only candidate isomorphism is forced: h(u_i) = v_i. *)
    let mapping = Hashtbl.create 8 in
    let inverse = Hashtbl.create 8 in
    let well_defined = ref true in
    for i = 0 to n - 1 do
      (match Hashtbl.find_opt mapping u.(i) with
      | Some w when w <> v.(i) -> well_defined := false
      | Some _ -> ()
      | None -> Hashtbl.add mapping u.(i) v.(i));
      match Hashtbl.find_opt inverse v.(i) with
      | Some w when w <> u.(i) -> well_defined := false
      | Some _ -> ()
      | None -> Hashtbl.add inverse v.(i) u.(i)
    done;
    !well_defined
    &&
    let du = Tuple.distinct_elements u in
    let b1r = Database.restrict_to b1 du in
    let b2r = Database.restrict_to b2 (Tuple.distinct_elements v) in
    let db_type = Database.db_type b1 in
    let du_arr = Array.of_list du in
    let m = Array.length du_arr in
    let ok = ref true in
    Array.iteri
      (fun i a ->
        if !ok then
          ok :=
            Combinat.fold_cartesian
              (fun acc js ->
                let xu = Array.map (fun j -> du_arr.(j)) js in
                let xv = Array.map (fun x -> Hashtbl.find mapping x) xu in
                acc && Database.mem b1r i xu = Database.mem b2r i xv)
              true ~width:a ~bound:m)
      db_type;
    !ok
  end

let check_same b u v = check b u b v

let oracle_cost ~db_type ~rank =
  Array.fold_left (fun acc a -> acc + Ints.pow rank a) 0 db_type
