lib/localiso/liso.ml: Array Combinat Database Hashtbl Ints Prelude Rdb Tuple
