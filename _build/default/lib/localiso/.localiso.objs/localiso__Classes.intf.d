lib/localiso/classes.mli: Diagram Prelude Rdb
