lib/localiso/lgq.ml: Array Classes Combinat List Prelude Tuple Tupleset
