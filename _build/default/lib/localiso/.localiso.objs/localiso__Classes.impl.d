lib/localiso/classes.ml: Array Diagram Hashtbl Prelude Rdb
