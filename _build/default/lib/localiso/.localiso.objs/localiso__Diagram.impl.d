lib/localiso/diagram.ml: Array Combinat Format Fun Ints List Prelude Printf Rdb Stdlib Tuple Tupleset
