lib/localiso/diagram.mli: Format Prelude Rdb
