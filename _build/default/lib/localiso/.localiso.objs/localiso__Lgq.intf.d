lib/localiso/lgq.mli: Classes Diagram Prelude Rdb
