lib/localiso/liso.mli: Prelude Rdb
