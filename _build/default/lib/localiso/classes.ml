type t = {
  db_type : int array;
  rank : int;
  diagrams : Diagram.t array;
  by_diagram : (Diagram.t, int) Hashtbl.t;
  realizations : (Rdb.Database.t * Prelude.Tuple.t) option array;
}

let make ?keep ~db_type ~rank () =
  let diagrams =
    Array.of_list (Diagram.enumerate ?keep ~db_type ~rank ())
  in
  let by_diagram = Hashtbl.create (Array.length diagrams) in
  Array.iteri (fun i d -> Hashtbl.replace by_diagram d i) diagrams;
  {
    db_type;
    rank;
    diagrams;
    by_diagram;
    realizations = Array.make (Array.length diagrams) None;
  }

let db_type t = t.db_type
let rank t = t.rank
let size t = Array.length t.diagrams

let diagram t i =
  if i < 0 || i >= Array.length t.diagrams then
    invalid_arg "Classes.diagram: index out of range";
  t.diagrams.(i)

let index_of_diagram t d = Hashtbl.find t.by_diagram d

let class_of t b u =
  if Prelude.Tuple.rank u <> t.rank then
    invalid_arg "Classes.class_of: rank mismatch";
  if Rdb.Database.db_type b <> t.db_type then
    invalid_arg "Classes.class_of: database type mismatch";
  index_of_diagram t (Diagram.of_pair b u)

let realization t i =
  match t.realizations.(i) with
  | Some r -> r
  | None ->
      let r = Diagram.realize (diagram t i) in
      t.realizations.(i) <- Some r;
      r

let to_list t = Array.to_list t.diagrams
