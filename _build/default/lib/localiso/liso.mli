(** The decidable local-isomorphism test (Proposition 2.2).

    [(B₁, u) ≅ₗ (B₂, v)] iff the restriction of B₁ to the elements of [u]
    and the restriction of B₂ to the elements of [v] are isomorphic by an
    isomorphism taking [u] to [v]. *)

val check :
  Rdb.Database.t -> Prelude.Tuple.t -> Rdb.Database.t -> Prelude.Tuple.t -> bool
(** The paper's three-part test: (i) |u| = |v|; (ii) uᵢ = uⱼ iff vᵢ = vⱼ;
    (iii) every projection of [u] lies in Rᵢ iff the same projection of
    [v] lies in R′ᵢ.  Returns [false] when the database types differ. *)

val check_bruteforce :
  Rdb.Database.t -> Prelude.Tuple.t -> Rdb.Database.t -> Prelude.Tuple.t -> bool
(** Independent implementation used to cross-validate {!check} in tests:
    constructs the (unique candidate) map uᵢ ↦ vᵢ, checks it is a
    well-defined bijection between the restrictions, and verifies relation
    preservation on the restricted structures. *)

val check_same : Rdb.Database.t -> Prelude.Tuple.t -> Prelude.Tuple.t -> bool
(** [check_same b u v] is [check b u b v] — the relation written [u ≅ₗ v]
    in §3.2. *)

val oracle_cost : db_type:int array -> rank:int -> int
(** Number of oracle queries {!check} performs on each side:
    [Σᵢ n]{^ [aᵢ]} for rank [n] — finite, witnessing decidability. *)
