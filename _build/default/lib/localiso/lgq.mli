(** Locally generic r-queries (Definition 2.5, Propositions 2.3–2.4).

    By Proposition 2.4, a locally generic r-query is either everywhere
    undefined or the union of some classes of [≅ₗ] of one common rank —
    so we represent one as a class registry plus a selection bit per
    class.  This is the semantic object that Theorem 2.1 compiles to and
    from L⁻ formulas. *)

type t =
  | Undefined  (** the everywhere-undefined query (Proposition 2.3(1)) *)
  | Classes of { registry : Classes.t; selected : bool array }

val undefined : t

val of_indices : Classes.t -> int list -> t
(** Query selecting the classes with the given registry indices. *)

val of_pred : Classes.t -> (Diagram.t -> bool) -> t
(** Query selecting the classes whose diagram satisfies the predicate. *)

val full : Classes.t -> t
(** The query answering true on every class (the relation Dⁿ). *)

val empty : Classes.t -> t
(** The everywhere-empty (but defined) query. *)

val selected_indices : t -> int list
(** Indices of selected classes; [] for [Undefined]. *)

val mem : t -> Rdb.Database.t -> Prelude.Tuple.t -> bool option
(** [mem q b u] is [None] when the query is undefined, otherwise
    [Some (u ∈ Q(B))].  Diverging behaviour is represented by [None]
    rather than actual divergence. *)

val eval_upto : t -> Rdb.Database.t -> cutoff:int -> Prelude.Tupleset.t
(** The members of Q(B) among tuples over [{0, ..., cutoff-1}] — a finite
    window on the (generally infinite) recursive output relation. *)

val equal : t -> t -> bool
(** Extensional equality (same registry object assumed for [Classes]). *)

val union : t -> t -> t
val inter : t -> t -> t
val complement : t -> t
(** The boolean operations, defined classwise; [Undefined] is absorbing.
    These witness "unions, intersections and complementations are both
    generic and locally generic" (§2). *)
