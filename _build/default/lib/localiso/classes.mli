(** The equivalence classes [C^n = {C^n_1, ..., C^n_m}] of [≅ₗ] for a fixed
    type and rank (§2).  A registry materializes the finitely many classes
    once and gives constant-time class lookup for concrete pairs. *)

type t
(** A registry of all classes of one type and rank. *)

val make : ?keep:(Diagram.t -> bool) -> db_type:int array -> rank:int -> unit -> t
(** Enumerate the classes.  [keep] restricts the enumeration (e.g. to
    irreflexive symmetric graph diagrams) — the registry then only knows
    those classes, and lookups of pairs outside them raise [Not_found]. *)

val db_type : t -> int array
val rank : t -> int
val size : t -> int
(** Number of classes — 68 for type (2,1) at rank 2 (§2's example). *)

val diagram : t -> int -> Diagram.t
(** The diagram naming class [i] (0-based). Raises [Invalid_argument] if
    out of range. *)

val index_of_diagram : t -> Diagram.t -> int
(** Position of a diagram in the registry.  Raises [Not_found]. *)

val class_of : t -> Rdb.Database.t -> Prelude.Tuple.t -> int
(** The class of the pair (B, u).  Finitely many oracle queries. *)

val realization : t -> int -> Rdb.Database.t * Prelude.Tuple.t
(** Canonical concrete pair in class [i] (memoized). *)

val to_list : t -> Diagram.t list
