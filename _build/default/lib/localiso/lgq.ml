open Prelude

type t =
  | Undefined
  | Classes of { registry : Classes.t; selected : bool array }

let undefined = Undefined

let of_indices registry indices =
  let selected = Array.make (Classes.size registry) false in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length selected then
        invalid_arg "Lgq.of_indices: index out of range";
      selected.(i) <- true)
    indices;
  Classes { registry; selected }

let of_pred registry pred =
  let selected =
    Array.init (Classes.size registry) (fun i ->
        pred (Classes.diagram registry i))
  in
  Classes { registry; selected }

let full registry = of_pred registry (fun _ -> true)
let empty registry = of_pred registry (fun _ -> false)

let selected_indices = function
  | Undefined -> []
  | Classes { selected; _ } ->
      Array.to_list selected
      |> List.mapi (fun i b -> (i, b))
      |> List.filter_map (fun (i, b) -> if b then Some i else None)

let mem q b u =
  match q with
  | Undefined -> None
  | Classes { registry; selected } ->
      if Tuple.rank u <> Classes.rank registry then Some false
      else Some selected.(Classes.class_of registry b u)

let eval_upto q b ~cutoff =
  match q with
  | Undefined -> Tupleset.empty
  | Classes { registry; selected } ->
      Combinat.fold_cartesian
        (fun acc u ->
          if selected.(Classes.class_of registry b u) then
            Tupleset.add (Array.copy u) acc
          else acc)
        Tupleset.empty ~width:(Classes.rank registry) ~bound:cutoff

let equal a b =
  match (a, b) with
  | Undefined, Undefined -> true
  | Classes x, Classes y ->
      Classes.db_type x.registry = Classes.db_type y.registry
      && Classes.rank x.registry = Classes.rank y.registry
      && x.selected = y.selected
  | _ -> false

let lift2 op a b =
  match (a, b) with
  | Undefined, _ | _, Undefined -> Undefined
  | Classes x, Classes y ->
      if Classes.size x.registry <> Classes.size y.registry then
        invalid_arg "Lgq: registry mismatch";
      Classes
        {
          registry = x.registry;
          selected = Array.map2 op x.selected y.selected;
        }

let union = lift2 ( || )
let inter = lift2 ( && )

let complement = function
  | Undefined -> Undefined
  | Classes { registry; selected } ->
      Classes { registry; selected = Array.map not selected }
