(* Finite/co-finite databases (§4): "every account is active except
   these".  A payroll where ACTIVE is co-finite (all ids except a
   finite block list), MANAGER is finite — an fcf-r-db with its
   indicators, queried in QL_f+.

   Run with: dune exec examples/fcf_payroll.exe *)

open Prelude
open Fincof

let fin rank lists = Fcf.finite ~rank (Tupleset.of_lists lists)
let cof rank lists = Fcf.cofinite ~rank (Tupleset.of_lists lists)

let () =
  Format.printf "=== Payroll as a finite/co-finite database ===@.@.";

  (* R1 = MANAGER (finite), R2 = ACTIVE (co-finite: everyone except the
     blocked ids 2 and 5), R3 = REPORTS_TO (finite, binary). *)
  let manager = fin 1 [ [ 0 ]; [ 1 ] ] in
  let active = cof 1 [ [ 2 ]; [ 5 ] ] in
  let reports = fin 2 [ [ 3; 0 ]; [ 4; 0 ]; [ 6; 1 ] ] in
  let db = Fcfdb.make ~name:"payroll" [ manager; active; reports ] in

  Format.printf "Relations (finite parts and indicators):@.";
  Array.iteri
    (fun i r -> Format.printf "  R%d = %a@." (i + 1) Fcf.pp r)
    (Fcfdb.relations db);
  Format.printf "@.Df (constants of the finite parts) = {%s}@."
    (String.concat ", " (List.map string_of_int (Fcfdb.df db)));
  Format.printf "Automorphisms of the finite structure on Df: %d@."
    (List.length (Fcfdb.automorphisms db));

  (* QL_f+ queries. *)
  let eval label term =
    Format.printf "@.%s@.  %s = %a@." label
      (Ql.Ql_ast.term_to_string term)
      Fcf.pp (Qlf.eval_term db term)
  in
  eval "Inactive ids (finite):" (Ql.Ql_ast.Comp (Ql.Ql_ast.Rel 1));
  eval "Active managers (finite ∩ co-finite = e − ¬f):"
    (Ql.Ql_ast.Inter (Ql.Ql_ast.Rel 0, Ql.Ql_ast.Rel 1));
  eval "Non-managers (co-finite):" (Ql.Ql_ast.Comp (Ql.Ql_ast.Rel 0));
  eval "People with a manager (projection of finite):"
    (Ql.Ql_ast.Down (Ql.Ql_ast.Swap (Ql.Ql_ast.Rel 2)));
  eval "Projection of a co-finite relation is everything (Prop 4.2):"
    (Ql.Ql_ast.Down (Ql.Ql_ast.Comp (Ql.Ql_ast.Rel 2)));

  (* A genuine |Y| < ∞ loop: complement until co-finite. *)
  let program =
    Ql.Ql_macros.seq
      [
        Ql.Ql_ast.Assign (0, Ql.Ql_ast.Rel 0);
        Ql.Ql_ast.While_finite
          (0, Ql.Ql_ast.Assign (0, Ql.Ql_ast.Comp (Ql.Ql_ast.Var 0)));
      ]
  in
  Format.printf "@.Program:@.%s@." (Ql.Ql_ast.program_to_string program);
  (match Qlf.output (Qlf.run db ~fuel:100 program) with
  | Some (finite_part, is_cofinite) ->
      Format.printf
        "  halted; Y1 co-finite: %b, finite part %a (the §4 output convention)@."
        is_cofinite Tupleset.pp finite_part
  | None -> Format.printf "  did not halt@.");

  (* Proposition 4.1 both ways: the fcf-r-db is an hs-r-db, and Df is
     recoverable from the characteristic tree alone. *)
  let hs = Fcfdb.to_hsdb db in
  Format.printf "@.As an hs-r-db: |T^1| = %d, |T^2| = %d@."
    (Hs.Hsdb.class_count hs 1) (Hs.Hsdb.class_count hs 2);
  (match Fcfdb.df_from_tree hs with
  | Some df ->
      Format.printf "Df recovered from the tree (Prop 4.1): {%s}@."
        (String.concat ", " (List.map string_of_int df))
  | None -> Format.printf "Df not recovered (unexpected)@.");
  Format.printf "@.Done.@."
