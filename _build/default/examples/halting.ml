(* The §1 non-closure example, end to end: the step-bounded halting
   relation is recursive, but its projection is the halting set — so
   even the simplest relational operator leaves the computable world,
   and that is why L⁻ (no quantifiers!) is all an r-complete language
   can afford (Theorem 2.1).

   Run with: dune exec examples/halting.exe *)

open Rmachine

let () =
  Format.printf "=== Step-bounded halting as a recursive database ===@.@.";

  (* Gödel-numbered toy machines. *)
  Format.printf "Machine codes:  loop = %d,  halt = %d,  slow = %d@."
    Toy.loop_code Toy.immediate_halt_code Toy.slow_input_code;
  Format.printf "(every natural number decodes to some machine)@.@.";

  let db = Toy.halting_relation () in
  Format.printf
    "R(x, y, z) = \"machine y halts on input z within x steps\" — type (3),@.primitive recursive, hence a legitimate r-db.  Samples:@.";
  List.iter
    (fun (x, y, z) ->
      Format.printf "  R(%d, %d, %d) = %b@." x y z
        (Rdb.Database.mem db 0 [| x; y; z |]))
    [
      (3, Toy.immediate_halt_code, 0);
      (1000, Toy.loop_code, 0);
      (10, Toy.slow_input_code, 10);
      (100, Toy.slow_input_code, 10);
    ];

  (* The projection splits a local-isomorphism class. *)
  Format.printf
    "@.The projection {(y, z) | ∃x R(x, y, z)} is the halting set.  By@.Theorem 2.1 a computable query must be a union of ≅ₗ-classes; the@.witness below shows the projection is not:@.@.";
  let w = Nonclosure.find () in
  let y1, z1 = w.Nonclosure.halting and y2, z2 = w.Nonclosure.looping in
  Format.printf "  halting pair  (y₁, z₁) = (%d, %d)  — halts at x = %d@." y1
    z1 w.Nonclosure.halt_steps;
  Format.printf "  looping pair  (y₂, z₂) = (%d, %d)  — never halts@." y2 z2;
  Format.printf "  locally isomorphic over R:  %b@."
    (Localiso.Liso.check_same db [| y1; z1 |] [| y2; z2 |]);
  Format.printf "  full witness verification:  %b@." (Nonclosure.verify w);

  (* For contrast, an honest oracle machine computing a query that IS
     recursive — and the Proposition 2.5 refutation of its genericity. *)
  Format.printf
    "@.The ∃-query {x | ∃y (x ≠ y ∧ (x, y) ∈ R)} as an oracle machine@.(Definition 2.4): generic, recursive — but not locally generic, so@.not computable-in-the-paper's-sense.  Proposition 2.5's construction@.builds isomorphic B₃, B₄ from the machine's own oracle log:@.@.";
  let decide db u =
    Oracle_rm.decider Oracle_rm.exists_forward_edge ~fuel:2000 db u
  in
  let b1 = Rdb.Instances.paper_b1 () and b2 = Rdb.Instances.paper_b2 () in
  (match
     Core.Genericity.refute ~decide ~b1 ~u:[| 0 |] ~b2 ~v:[| 2 |]
   with
  | None -> Format.printf "  (no certificate — unexpected)@."
  | Some cert ->
      Format.printf "  B₃ answer: %b,  B₄ answer: %b (on isomorphic inputs!)@."
        cert.Core.Genericity.answer3 cert.Core.Genericity.answer4;
      Format.printf "  certificate verifies: %b@."
        (Core.Genericity.verify cert));
  Format.printf "@.Done.@."
