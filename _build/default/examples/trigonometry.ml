(* The paper's §1 motivating example: "Values for the trigonometric
   functions … can be viewed as a recursive data base, since we might be
   interested in the sines or cosines of infinitely many angles.
   Instead of keeping them all in a table, which is impossible, we keep
   rules for computing the values from the angles."

   Run with: dune exec examples/trigonometry.exe *)


let scale = 1000

let () =
  Format.printf "=== Trigonometry as a recursive database ===@.@.";
  let db = Rdb.Instances.trigonometry ~scale in
  Format.printf
    "SIN(d, v) holds iff v = ⌊%d·(1 + sin d°)⌋, likewise COS — rules,@.not tables; the relations are infinite but membership is computed.@.@."
    scale;

  (* Point lookups through the oracle interface. *)
  List.iter
    (fun d ->
      let value rel =
        let rec search v =
          if Rdb.Database.mem db rel [| d; v |] then v else search (v + 1)
        in
        search 0
      in
      Format.printf "  d = %3d°:  sin-cell %4d   cos-cell %4d@." d (value 0)
        (value 1))
    [ 0; 30; 45; 90; 180; 270; 359; 720 ];

  (* L⁻ queries against the infinite table, using relation names. *)
  let rels = Rlogic.Parser.rels_of_database db in
  let q =
    Rlogic.Parser.query ~rels "{(d, v) | SIN(d, v) && COS(d, v)}"
  in
  Format.printf
    "@.Angles whose scaled sine and cosine cells coincide (window 370×2001):@.";
  let hits = ref [] in
  for d = 0 to 369 do
    for v = 0 to 2 * scale do
      match Rlogic.Qf_eval.mem db q [| d; v |] with
      | Some true -> hits := (d, v) :: !hits
      | _ -> ()
    done
  done;
  List.iter
    (fun (d, v) -> Format.printf "  d = %d°, shared cell %d@." d v)
    (List.rev !hits);

  (* Oracle accounting: everything above was finitely many membership
     questions (Definition 2.4's discipline). *)
  Format.printf "@.Total oracle questions asked: %d@."
    (Rdb.Database.oracle_calls db);
  Format.printf "@.Done.@."
