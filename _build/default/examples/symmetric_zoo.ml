(* A tour of the highly symmetric zoo (§3): characteristic trees, class
   counts, the stretching criterion of Proposition 3.1, EF refinement
   and the fixed r₀ of Proposition 3.6, and elementary equivalence
   (Corollary 3.1).

   Run with: dune exec examples/symmetric_zoo.exe *)

open Prelude

let () =
  Format.printf "=== The highly symmetric zoo ===@.@.";
  let instances =
    [
      Hs.Hsinstances.infinite_clique ();
      Hs.Hsinstances.empty_graph ();
      Hs.Hsinstances.mod_cliques 2;
      Hs.Hsinstances.mod_cliques 3;
      Hs.Hsinstances.triangles ();
      Hs.Hsinstances.disjoint_copies
        [ Hs.Hsinstances.undirected_path_component 3 ];
      Hs.Hsinstances.disjoint_copies
        [ Hs.Hsinstances.directed_edge_component ];
      Hs.Hsinstances.rado ();
      Hs.Hsinstances.random_colored_graph ();
      Hs.Hsinstances.complete_bipartite ();
      Hs.Hsinstances.unary_finite_set ~members:[ 0; 1; 2 ];
    ]
  in

  Format.printf "%-16s %6s %6s %6s %8s@." "instance" "|T^1|" "|T^2|" "|T^3|"
    "r0(2)";
  List.iter
    (fun inst ->
      Format.printf "%-16s %6d %6d %6d %8d@." (Hs.Hsdb.name inst)
        (Hs.Hsdb.class_count inst 1)
        (Hs.Hsdb.class_count inst 2)
        (Hs.Hsdb.class_count inst 3)
        (Hs.Ef.r0 inst ~n:2))
    instances;

  (* The paper's §3.3-style tree picture for a directed example. *)
  let arrows =
    Hs.Hsinstances.disjoint_copies [ Hs.Hsinstances.directed_edge_component ]
  in
  Format.printf "@.%a@." (Hs.Hsdb.pp_tree ~max_rank:2) arrows;

  (* Proposition 3.1: stretching detects non-symmetry.  The line graph
     (the paper's … 7 5 3 1 2 4 6 … figure) fails: after marking one
     node, nodes at different distances are inequivalent. *)
  Format.printf
    "Stretching the line by one marked node (Prop. 3.1): rank-1 classes@.among the first k nodes grow without bound:@.";
  List.iter
    (fun k ->
      let classes =
        List.fold_left
          (fun reps x ->
            if
              List.exists
                (fun y -> Hs.Hsinstances.line_equiv [| 0; x |] [| 0; y |])
                reps
            then reps
            else x :: reps)
          [] (Ints.range 0 k)
      in
      Format.printf "  k = %2d: %d classes@." k (List.length classes))
    [ 4; 8; 16; 32 ];
  Format.printf
    "whereas stretching the (highly symmetric) clique by a node gives 2:@.";
  let stretched =
    Hs.Hsdb.stretch (Hs.Hsinstances.infinite_clique ()) ~by:[| 0 |]
  in
  Format.printf "  %d classes@." (Hs.Hsdb.class_count stretched 1);

  (* Corollary 3.1: elementary equivalence decides isomorphism for hs
     structures; a separating sentence is constructible. *)
  Format.printf "@.Distinguishing rounds of the EF game (Cor. 3.1):@.";
  let pairs =
    [
      (Hs.Hsinstances.infinite_clique (), Hs.Hsinstances.empty_graph ());
      (Hs.Hsinstances.mod_cliques 2, Hs.Hsinstances.mod_cliques 3);
      (Hs.Hsinstances.triangles (), Hs.Hsinstances.infinite_clique ());
      (Hs.Hsinstances.triangles (), Hs.Hsinstances.triangles ());
    ]
  in
  List.iter
    (fun (t1, t2) ->
      match Hs.Elem.distinguishing_round ~cap:4 t1 t2 with
      | Some r ->
          Format.printf "  %-10s vs %-10s: spoiler wins at round %d@."
            (Hs.Hsdb.name t1) (Hs.Hsdb.name t2) r
      | None ->
          Format.printf
            "  %-10s vs %-10s: duplicator survives all tested rounds@."
            (Hs.Hsdb.name t1) (Hs.Hsdb.name t2))
    pairs;

  (match
     Hs.Elem.separating_sentence
       (Hs.Hsinstances.infinite_clique ())
       (Hs.Hsinstances.empty_graph ())
   with
  | Some s ->
      Format.printf "@.A sentence true in the clique, false in the empty graph:@.  %s@."
        (Rlogic.Ast.formula_to_string s)
  | None -> ());
  (* The non-hs contrast (§3.2): one line and two lines satisfy the
     same sentences at every tested quantifier rank, yet are not
     isomorphic — Corollary 3.1 genuinely needs high symmetry. *)
  let one = { Hs.Lines.nlines = 1 } and two = { Hs.Lines.nlines = 2 } in
  Format.printf
    "@.One ℤ-line vs two ℤ-lines (both non-hs): duplicator survives@.";
  List.iter
    (fun r ->
      Format.printf "  %d rounds: %b@." r
        (Hs.Lines.strategy_wins ~a:one ~b:two ~r))
    [ 1; 2; 3 ];
  Format.printf "  isomorphic: %b@." (Hs.Lines.isomorphic one two);

  Format.printf "@.Done.@."
