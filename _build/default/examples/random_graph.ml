(* The Rado graph (a recursive countable random structure, §3 /
   Proposition 3.2) as a highly symmetric recursive database: explore
   its characteristic tree, run QL_hs programs on the representation
   C_B, and evaluate quantified first-order queries in finite time.

   Run with: dune exec examples/random_graph.exe *)

open Prelude

let () =
  Format.printf "=== The Rado graph as an hs-r-db ===@.@.";
  let rado = Hs.Hsinstances.rado () in

  (* The characteristic tree: one representative per ≅_B-class. *)
  Format.printf "%a@." (Hs.Hsdb.pp_tree ~max_rank:3) rado;
  Format.printf
    "Tuple equivalence is local isomorphism (Prop. 3.2), so |T^n| is the@.number of irreflexive symmetric diagrams: 1, 3, 15 for n = 1, 2, 3.@.@.";

  (* Representatives of the edge relation. *)
  Format.printf "C1 (edge classes): %a@." Tupleset.pp (Hs.Hsdb.reps rado 0);

  (* A QL_hs program on the representation: distinct non-adjacent
     pairs, as ¬Rel1 ∩ ¬E. *)
  let term =
    Ql.Ql_macros.diff (Ql.Ql_ast.Comp (Ql.Ql_ast.Rel 0)) Ql.Ql_ast.E
  in
  let value = Ql.Ql_hs.eval_term rado term in
  Format.printf "@.QL_hs term %s evaluates to representatives %a@."
    (Ql.Ql_ast.term_to_string term)
    Tupleset.pp value.Ql.Ql_hs.reps;
  Format.printf "  concrete members below 6: %a@." Tupleset.pp
    (Ql.Ql_hs.denotation rado value ~cutoff:6);

  (* First-order queries with quantifiers, evaluated over the tree
     (Theorem 6.3's evaluation): the extension property in action. *)
  let sentences =
    [
      ( "universality (1-extension)",
        "forall x. exists y. y != x && R1(x, y)" );
      ( "common neighbour (2-extension)",
        "forall x. forall y. x != y -> (exists z. z != x && z != y && \
         R1(z, x) && R1(z, y))" );
      ( "common non-neighbour",
        "forall x. forall y. exists z. z != x && z != y && !R1(z, x) && \
         !R1(z, y)" );
      ("a triangle exists", "exists a. exists b. exists c. R1(a, b) && R1(b, c) && R1(a, c)");
      ("no isolated vertex", "!(exists x. forall y. !R1(x, y))");
    ]
  in
  Format.printf "@.Sentence evaluation over representatives:@.";
  List.iter
    (fun (label, s) ->
      let f = Rlogic.Parser.formula s in
      Format.printf "  %-28s %b@." label (Hs.Fo_eval.eval_sentence rado f))
    sentences;

  (* The Theorem 3.1 coding tuple: the whole input re-coded over ℕ. *)
  let d = Hs.Ef.find_coding_tuple rado in
  Format.printf "@.Coding tuple d = %a (its projections cover C1: %b)@."
    Tuple.pp d
    (Hs.Ef.projections_cover rado d);

  (* How many oracle calls did all of this take? *)
  Format.printf "@.Oracle questions asked against the BIT predicate: %d@."
    (Rdb.Database.oracle_calls (Hs.Hsdb.db rado));
  Format.printf "@.Done.@."
