(* A tour of QL in all three semantics, using the concrete syntax
   (& = ∩, ~ = complement, ^ = up, ! = down, % = swap):

   - the finitary QL of Chandra–Harel [CH], the baseline;
   - QL_hs (§3.3), acting on representations of infinite hs databases;
   - QL_f+ (§4), acting on finite/co-finite relations with indicators.

   Run with: dune exec examples/ql_tour.exe *)

open Prelude

let parse = Ql.Ql_parser.program

let () =
  Format.printf "=== QL, three ways ===@.@.";

  (* ---------------------------------------------------------------- *)
  Format.printf "--- 1. Finite QL ([CH]) on a 4-element graph@.";
  let edges = Tupleset.of_lists [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  let src = "Y1 <- ~(Rel1 & Rel1%) & Rel1" in
  Format.printf "source:  %s@." src;
  let p = parse src in
  Format.printf "parsed:  %s@." (Ql.Ql_ast.program_to_string p);
  (match
     Ql.Ql_finite.run ~domain:[ 0; 1; 2; 3 ] ~rels:[| (2, edges) |] ~fuel:100 p
   with
  | Ql.Ql_interp.Halted store ->
      Format.printf "Y1 (one-way edges): %a@.@." Tupleset.pp
        store.(0).Ql.Ql_finite.tuples
  | _ -> Format.printf "did not halt@.");

  (* ---------------------------------------------------------------- *)
  Format.printf "--- 2. QL_hs on the (infinite) triangles graph@.";
  let tri = Hs.Hsinstances.triangles () in
  let src2 = "Y1 <- ~Rel1 & ~E" in
  Format.printf "source:  %s@." src2;
  (match Ql.Ql_hs.run tri ~fuel:100 (parse src2) with
  | Ql.Ql_interp.Halted store ->
      Format.printf "Y1 representatives: %a@." Tupleset.pp
        store.(0).Ql.Ql_hs.reps;
      Format.printf "denoted members below 6: %a@.@." Tupleset.pp
        (Ql.Ql_hs.denotation tri store.(0) ~cutoff:6)
  | _ -> Format.printf "did not halt@.");

  (* A while loop with the footnote-8 |Y| = 1 test. *)
  let src3 = "Y1 <- E!!; while |Y1| = 1 do { Y1 <- ~Y1 & Y1 }" in
  Format.printf "source:  %s@." src3;
  (match Ql.Ql_hs.run tri ~fuel:100 (parse src3) with
  | Ql.Ql_interp.Halted store ->
      Format.printf "halted; Y1 empty: %b@.@."
        (Tupleset.is_empty store.(0).Ql.Ql_hs.reps)
  | _ -> Format.printf "did not halt@.");

  (* ---------------------------------------------------------------- *)
  Format.printf "--- 3. QL_f+ on a finite/co-finite database@.";
  let db =
    Fincof.Fcfdb.make
      [
        Fincof.Fcf.finite ~rank:1 (Tupleset.of_lists [ [ 0 ]; [ 1 ] ]);
        Fincof.Fcf.cofinite ~rank:1 (Tupleset.of_lists [ [ 5 ] ]);
      ]
  in
  let src4 = "Y1 <- Rel1; while |Y1| < inf do { Y1 <- ~Y1 }" in
  Format.printf "source:  %s@." src4;
  (match Fincof.Qlf.output (Fincof.Qlf.run db ~fuel:100 (parse src4)) with
  | Some (finite_part, cofinite) ->
      Format.printf "Y1 co-finite: %b, finite part: %a@.@." cofinite
        Tupleset.pp finite_part
  | None -> Format.printf "did not halt@.");

  (* ---------------------------------------------------------------- *)
  Format.printf "--- 4. The same source, different worlds@.";
  let src5 = "Y1 <- Rel1 & ~E" in
  Format.printf "source:  %s@." src5;
  let p5 = parse src5 in
  (match
     Ql.Ql_finite.run ~domain:[ 0; 1; 2 ]
       ~rels:[| (2, Tupleset.of_lists [ [ 0; 0 ]; [ 0; 1 ] ]) |]
       ~fuel:100 p5
   with
  | Ql.Ql_interp.Halted store ->
      Format.printf "finite world:   %a@." Tupleset.pp
        store.(0).Ql.Ql_finite.tuples
  | _ -> ());
  (* Needs a rank-2 E to intersect with: triangles again. *)
  (match Ql.Ql_hs.run tri ~fuel:100 p5 with
  | Ql.Ql_interp.Halted store ->
      Format.printf "infinite world: representatives %a@." Tupleset.pp
        store.(0).Ql.Ql_hs.reps
  | _ -> ());
  Format.printf "@.Done.@."
