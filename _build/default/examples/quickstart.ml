(* Quickstart: define an infinite recursive database, query it with the
   complete language L⁻ (Theorem 2.1), and round-trip a query through
   the class-set semantics.

   Run with: dune exec examples/quickstart.exe *)

open Prelude

let () =
  Format.printf "=== recdb quickstart ===@.@.";

  (* 1. An infinite recursive database: divisibility over ℕ.  We never
     store the relation — membership is computed from the tuple. *)
  let db = Rdb.Instances.divides () in
  Format.printf "Database %s, type (%s)@."
    (Rdb.Database.name db)
    (String.concat ", "
       (List.map string_of_int (Array.to_list (Rdb.Database.db_type db))));

  (* 2. Parse and evaluate an L⁻ query: elements on the diagonal of the
     divisibility relation (x | x, i.e. x > 0). *)
  let q = Rlogic.Parser.query "{(x) | R1(x, x)}" in
  Format.printf "@.Query %s on a window of the domain:@."
    (Rlogic.Ast.query_to_string q);
  Format.printf "  answer upto 10: %a@."
    Tupleset.pp
    (Rlogic.Qf_eval.eval_upto db q ~cutoff:10);

  (* 3. The finitely many ≅ₗ-classes (Proposition 2.2 / §2): for graphs
     at rank 2 there are 18. *)
  let reg = Localiso.Classes.make ~db_type:[| 2 |] ~rank:2 () in
  Format.printf "@.Type (2) has %d classes of rank 2 (and type (2,1) has %d — the paper's 68).@."
    (Localiso.Classes.size reg)
    (Localiso.Diagram.count ~db_type:[| 2; 1 |] ~rank:2);

  (* 4. Completeness round trip (Theorem 2.1): a computable query given
     semantically, compiled to an L⁻ formula. *)
  let lgq =
    Localiso.Lgq.of_pred reg (fun d ->
        Localiso.Diagram.blocks d = 2
        && Localiso.Diagram.atom d ~rel:0 [| 0; 1 |]
        && not (Localiso.Diagram.atom d ~rel:0 [| 1; 0 |]))
  in
  let synthesized = Core.Completeness.query_of_lgq lgq in
  Format.printf "@.Class set {strict edges} compiles to L⁻:@.  %s@."
    (Rlogic.Ast.query_to_string synthesized);
  Format.printf "  evaluated on divides upto 6: %a@."
    Tupleset.pp
    (Rlogic.Qf_eval.eval_upto db synthesized ~cutoff:6);

  (* 5. And back: the formula's class set equals the original. *)
  Format.printf "  round trip holds: %b@."
    (Core.Completeness.roundtrip_holds reg lgq);

  (* 6. L⁻ equivalence is decidable — normalize a scruffy query. *)
  let scruffy = Rlogic.Parser.query "{(x, y) | !(!R1(x, y) || !(x != y))}" in
  let tidy = Rlogic.Parser.query "{(x, y) | R1(x, y) && x != y}" in
  Format.printf "@.Equivalence of@.  %s@.and@.  %s@.  decided: %b@."
    (Rlogic.Ast.query_to_string scruffy)
    (Rlogic.Ast.query_to_string tidy)
    (Core.Completeness.equivalent reg scruffy tidy);

  Format.printf "@.Done.@."
