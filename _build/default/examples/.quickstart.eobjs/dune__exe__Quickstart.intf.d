examples/quickstart.mli:
