examples/ql_tour.ml: Array Fincof Format Hs Prelude Ql Tupleset
