examples/symmetric_zoo.mli:
