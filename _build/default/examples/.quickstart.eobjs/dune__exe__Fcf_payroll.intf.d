examples/fcf_payroll.mli:
