examples/halting.ml: Core Format List Localiso Nonclosure Oracle_rm Rdb Rmachine Toy
