examples/trigonometry.mli:
