examples/random_graph.ml: Format Hs List Prelude Ql Rdb Rlogic Tuple Tupleset
