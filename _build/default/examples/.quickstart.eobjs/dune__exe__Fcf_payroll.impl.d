examples/fcf_payroll.ml: Array Fcf Fcfdb Fincof Format Hs List Prelude Ql Qlf String Tupleset
