examples/random_graph.mli:
