examples/quickstart.ml: Array Core Format List Localiso Prelude Rdb Rlogic String Tupleset
