examples/halting.mli:
