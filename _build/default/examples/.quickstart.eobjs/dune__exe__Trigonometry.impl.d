examples/trigonometry.ml: Format List Rdb Rlogic
