examples/symmetric_zoo.ml: Format Hs Ints List Prelude Rlogic
