examples/ql_tour.mli:
