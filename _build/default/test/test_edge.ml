(* Edge cases, failure injection, and negative tests across modules:
   the validator must catch broken representations, constructors must
   reject ill-formed inputs, and fuelled components must fail loudly
   rather than spin. *)

open Prelude

let t = Tuple.of_list
let check = Alcotest.check

(* -------------------------------------------------------------------- *)
(* Failure injection: Hsdb.validate catches broken representations      *)

let test_validator_catches_equivalent_paths () =
  (* A "tree" whose offspring include two fresh labels: two paths of the
     same class — validation must complain. *)
  let broken =
    Hs.Hsdb.make ~name:"broken" ~db:(Rdb.Instances.empty_graph ())
      ~children:(fun u ->
        let fresh = 1 + Array.fold_left max (-1) u in
        Tuple.distinct_elements u @ [ fresh; fresh + 1 ])
      ~equiv:(fun u v ->
        Tuple.equality_pattern u = Tuple.equality_pattern v)
      ()
  in
  Alcotest.(check bool) "violations reported" true
    (Hs.Hsdb.validate ~max_rank:2 ~window:4 broken <> [])

let test_validator_catches_missing_classes () =
  (* A tree that never extends by fresh elements cannot cover the
     distinct-pair class. *)
  let broken =
    Hs.Hsdb.make ~name:"broken2" ~db:(Rdb.Instances.empty_graph ())
      ~children:(fun u ->
        match Tuple.distinct_elements u with [] -> [ 0 ] | ds -> ds)
      ~equiv:(fun u v ->
        Tuple.equality_pattern u = Tuple.equality_pattern v)
      ()
  in
  Alcotest.(check bool) "missing representative reported" true
    (List.exists
       (fun msg ->
         String.length msg >= 5
         && String.sub msg 0 5 = "tuple")
       (Hs.Hsdb.validate ~max_rank:2 ~window:3 broken))

let test_validator_catches_wrong_rel_mem () =
  (* Equivalence too coarse: merges edge and non-edge pairs, so rel_mem
     disagrees with the raw relation. *)
  let broken =
    Hs.Hsdb.make ~name:"broken3" ~db:(Rdb.Instances.triangles ())
      ~children:(fun u ->
        let fresh = 1 + Array.fold_left max (-1) u in
        Tuple.distinct_elements u @ [ fresh ])
      ~equiv:(fun u v ->
        Tuple.equality_pattern u = Tuple.equality_pattern v)
      ()
  in
  Alcotest.(check bool) "violations reported" true
    (Hs.Hsdb.validate ~max_rank:2 ~window:4 broken <> [])

let test_representative_not_found () =
  let broken =
    Hs.Hsdb.make ~name:"broken4" ~db:(Rdb.Instances.empty_graph ())
      ~children:(fun u -> if Tuple.rank u = 0 then [ 0 ] else [])
      ~equiv:Tuple.equal ()
  in
  Alcotest.check_raises "no representative" Not_found (fun () ->
      ignore (Hs.Hsdb.representative broken (t [ 5 ])))

let test_r0_cap_exceeded () =
  (* Two same-diagram paths that no refinement ever separates. *)
  let broken =
    Hs.Hsdb.make ~name:"diverging" ~db:(Rdb.Instances.empty_graph ())
      ~children:(fun u ->
        let fresh = 1 + Array.fold_left max (-1) u in
        Tuple.distinct_elements u @ [ fresh; fresh + 1 ])
      ~equiv:Tuple.equal ()
  in
  Alcotest.check_raises "cap" (Failure "Ef.r0: cap exceeded") (fun () ->
      ignore (Hs.Ef.r0 ~cap:3 broken ~n:2))

let test_find_coding_tuple_cap () =
  Alcotest.check_raises "max_rank 0"
    (Failure "Ef.find_coding_tuple: no coding tuple within max_rank")
    (fun () ->
      ignore
        (Hs.Ef.find_coding_tuple ~max_rank:0 (Hs.Hsinstances.triangles ())))

(* -------------------------------------------------------------------- *)
(* Constructor validation                                               *)

let test_diagram_make_validation () =
  Alcotest.check_raises "bad pattern"
    (Invalid_argument "Diagram.make: pattern not in restricted-growth form")
    (fun () ->
      ignore
        (Localiso.Diagram.make ~db_type:[| 1 |] ~pattern:[| 1; 0 |]
           ~atoms:[| [| false; false |] |]));
  Alcotest.check_raises "bad table size"
    (Invalid_argument "Diagram.make: atom table size mismatch") (fun () ->
      ignore
        (Localiso.Diagram.make ~db_type:[| 1 |] ~pattern:[| 0 |]
           ~atoms:[| [| false; false |] |]))

let test_lgq_of_indices_validation () =
  let reg = Localiso.Classes.make ~db_type:[| 2 |] ~rank:1 () in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Lgq.of_indices: index out of range") (fun () ->
      ignore (Localiso.Lgq.of_indices reg [ 99 ]))

let test_diagram_vars_validation () =
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Diagram_vars.of_names: duplicate names") (fun () ->
      ignore (Core.Completeness.Diagram_vars.of_names [ "x"; "x" ]))

let test_relation_of_tupleset_validation () =
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Relation.of_tupleset: tuple rank mismatch") (fun () ->
      ignore
        (Rdb.Relation.of_tupleset ~arity:2 (Tupleset.of_lists [ [ 1 ] ])))

let test_domain_negative_index () =
  let evens = Rdb.Database.domain_of_pred (fun x -> x mod 2 = 0) in
  Alcotest.check_raises "negative"
    (Invalid_argument "Database.domain: negative index") (fun () ->
      ignore (evens.Rdb.Database.dnth (-1)))

let test_fcf_validation () =
  let open Fincof in
  Alcotest.check_raises "tuple rank" (Invalid_argument "Fcf: tuple rank mismatch")
    (fun () -> ignore (Fcf.finite ~rank:2 (Tupleset.of_lists [ [ 1 ] ])));
  let c = Fcf.cofinite ~rank:1 Tupleset.empty in
  Alcotest.(check bool) "swap on rank 1 is a rank error" true
    (match Fcf.swap_last c with
    | exception Ql.Ql_interp.Rank_error _ -> true
    | _ -> false);
  let f0 = Fcf.finite ~rank:0 (Tupleset.singleton [||]) in
  Alcotest.(check bool) "drop_first on rank 0 is a rank error" true
    (match Fcf.drop_first f0 with
    | exception Ql.Ql_interp.Rank_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "inter rank mismatch is a rank error" true
    (match
       Fcf.inter
         (Fcf.cofinite ~rank:1 Tupleset.empty)
         (Fcf.cofinite ~rank:2 Tupleset.empty)
     with
    | exception Ql.Ql_interp.Rank_error _ -> true
    | _ -> false)

(* -------------------------------------------------------------------- *)
(* Machine edge cases                                                   *)

let test_counter_jump_past_end_halts () =
  let m = Rmachine.Counter.make ~ncounters:1 [ Rmachine.Counter.Jmp 50 ] in
  Alcotest.(check bool) "halts" true
    (match Rmachine.Counter.run m ~input:[] ~fuel:10 with
    | Rmachine.Counter.Halted _ -> true
    | Rmachine.Counter.Out_of_fuel -> false)

let test_oracle_rm_fall_off_rejects () =
  let m = Rmachine.Oracle_rm.make ~nregs:1 [ Rmachine.Oracle_rm.Inc 0 ] in
  Alcotest.(check bool) "rejects" true
    (Rmachine.Oracle_rm.run m ~db:(Rdb.Instances.divides ()) ~input:(t [ 1 ])
       ~fuel:10
    = Rmachine.Oracle_rm.Rejected)

let test_toy_encode_overflow () =
  (* Long programs do not fit 63-bit Gödel codes; encode must fail
     loudly (DESIGN.md substitution note). *)
  let long = Rmachine.Counter.halt_after 60 in
  Alcotest.check_raises "overflow" (Invalid_argument "Ints.of_digits: overflow")
    (fun () -> ignore (Rmachine.Toy.encode long))

(* -------------------------------------------------------------------- *)
(* GM tape-level behaviour                                              *)

let test_gm_tape_actions () =
  (* Write a symbol, move, write an element, halt: inspect the unit. *)
  let spec =
    {
      Genmach.Gm.nstores = 1;
      start = 0;
      delta =
        (fun v ->
          match v.Genmach.Gm.state with
          | 0 ->
              Genmach.Gm.Step
                ( [
                    Genmach.Gm.Write (Genmach.Gm.Sym 7);
                    Genmach.Gm.Move (Genmach.Gm.H1, Genmach.Gm.Right);
                    Genmach.Gm.Write (Genmach.Gm.Elem 3);
                  ],
                  1 )
          | _ -> Genmach.Gm.Halt);
    }
  in
  let tri = Hs.Hsinstances.triangles () in
  match Genmach.Gm.run spec tri ~fuel:10 with
  | Some { units = [ u ]; _ } ->
      check
        (Alcotest.list Alcotest.bool)
        "tape contents"
        [ true; true ]
        [
          u.Genmach.Gm.tape.(0) = Genmach.Gm.Sym 7;
          u.Genmach.Gm.tape.(1) = Genmach.Gm.Elem 3;
        ]
  | _ -> Alcotest.fail "expected one halted unit"

let test_gm_bad_store_register () =
  let spec =
    {
      Genmach.Gm.nstores = 1;
      start = 0;
      delta = (fun _ -> Genmach.Gm.Clear (99, 1));
    }
  in
  Alcotest.check_raises "bad register"
    (Genmach.Gm.Bad_program "Clear register out of range") (fun () ->
      ignore (Genmach.Gm.run spec (Hs.Hsinstances.triangles ()) ~fuel:10))

(* -------------------------------------------------------------------- *)
(* Parser fuzz: random token soup either parses or raises Parser.Error  *)

let test_parser_fuzz () =
  let rng = Ints.Rng.make 2024 in
  let tokens =
    [|
      "x"; "y"; "R1"; "("; ")"; ","; "&&"; "||"; "!"; "->"; "="; "!=";
      "exists"; "forall"; "."; "true"; "false"; "{"; "}"; "|";
    |]
  in
  for _ = 1 to 2000 do
    let n = 1 + Ints.Rng.int rng 12 in
    let s =
      String.concat " "
        (List.init n (fun _ -> tokens.(Ints.Rng.int rng (Array.length tokens))))
    in
    match Rlogic.Parser.query s with
    | _ -> ()
    | exception Rlogic.Parser.Error _ -> ()
    (* anything else (Match_failure, Stack_overflow, ...) fails the test *)
  done

let test_parser_error_positions () =
  (match Rlogic.Parser.formula "x = " with
  | exception Rlogic.Parser.Error msg ->
      Alcotest.(check bool) "mentions offset" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected parse error");
  match Rlogic.Parser.formula "x & y" with
  | exception Rlogic.Parser.Error msg ->
      Alcotest.(check bool) "single & rejected" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected parse error"

(* -------------------------------------------------------------------- *)
(* Random well-ranked QL terms: QL_hs on the hs view of an fcf database *)
(* agrees with QL_f+ on the fcf view (Corollary 4.1 as a property).     *)

let qcheck_qlhs_vs_qlf =
  let open QCheck2 in
  let fcf_db =
    Fincof.Fcfdb.make
      [
        Fincof.Fcf.finite ~rank:1 (Tupleset.of_lists [ [ 0 ]; [ 1 ] ]);
        Fincof.Fcf.cofinite ~rank:2 (Tupleset.of_lists [ [ 2; 2 ] ]);
      ]
  in
  let hs_db = Fincof.Fcfdb.to_hsdb fcf_db in
  (* Generator for (term, rank): avoids ill-ranked applications.  Up is
     excluded because QL_f+ restricts it to finite values, and E is
     excluded because §4 deliberately redefines it over Df — so
     E-containing terms denote different relations in the two languages
     (e.g. E↓ is Df in QL_f+ but all of D in QL_hs) even though the two
     languages express the same queries. *)
  let rec gen_term depth =
    let open Gen in
    let base =
      oneofl [ (Ql.Ql_ast.Rel 0, 1); (Ql.Ql_ast.Rel 1, 2) ]
    in
    if depth = 0 then base
    else
      oneof
        [
          base;
          (gen_term (depth - 1) >|= fun (e, r) -> (Ql.Ql_ast.Comp e, r));
          ( gen_term (depth - 1) >>= fun (e, r) ->
            gen_term (depth - 1) >|= fun (f, r') ->
            if r = r' then (Ql.Ql_ast.Inter (e, f), r)
            else (Ql.Ql_ast.Comp e, r) );
          ( gen_term (depth - 1) >|= fun (e, r) ->
            if r >= 2 then (Ql.Ql_ast.Swap e, r) else (e, r) );
          ( gen_term (depth - 1) >|= fun (e, r) ->
            if r >= 1 then (Ql.Ql_ast.Down e, r - 1) else (e, r) );
        ]
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:200 ~name:"QL_hs vs QL_f+ on an fcf database"
       (gen_term 4)
       (fun (term, _rank) ->
         let fcf_value = Fincof.Qlf.eval_term fcf_db term in
         let hs_value = Ql.Ql_hs.eval_term hs_db term in
         let cutoff = 6 in
         let fcf_window =
           Combinat.fold_cartesian
             (fun acc u ->
               if Fincof.Fcf.mem fcf_value (Array.copy u) then
                 Tupleset.add (Array.copy u) acc
               else acc)
             Tupleset.empty
             ~width:(Fincof.Fcf.rank fcf_value)
             ~bound:cutoff
         in
         Tupleset.equal fcf_window
           (Ql.Ql_hs.denotation hs_db hs_value ~cutoff)))

let () =
  Alcotest.run "edge"
    [
      ( "failure-injection",
        [
          Alcotest.test_case "validator: equivalent paths" `Quick
            test_validator_catches_equivalent_paths;
          Alcotest.test_case "validator: missing classes" `Quick
            test_validator_catches_missing_classes;
          Alcotest.test_case "validator: wrong rel_mem" `Quick
            test_validator_catches_wrong_rel_mem;
          Alcotest.test_case "representative not found" `Quick
            test_representative_not_found;
          Alcotest.test_case "r0 cap" `Quick test_r0_cap_exceeded;
          Alcotest.test_case "coding tuple cap" `Quick
            test_find_coding_tuple_cap;
        ] );
      ( "constructor-validation",
        [
          Alcotest.test_case "diagram" `Quick test_diagram_make_validation;
          Alcotest.test_case "lgq indices" `Quick test_lgq_of_indices_validation;
          Alcotest.test_case "diagram vars" `Quick test_diagram_vars_validation;
          Alcotest.test_case "relation" `Quick
            test_relation_of_tupleset_validation;
          Alcotest.test_case "domain" `Quick test_domain_negative_index;
          Alcotest.test_case "fcf" `Quick test_fcf_validation;
        ] );
      ( "machines",
        [
          Alcotest.test_case "counter jump past end" `Quick
            test_counter_jump_past_end_halts;
          Alcotest.test_case "oracle rm falls off" `Quick
            test_oracle_rm_fall_off_rejects;
          Alcotest.test_case "toy encode overflow" `Quick
            test_toy_encode_overflow;
          Alcotest.test_case "gm tape actions" `Quick test_gm_tape_actions;
          Alcotest.test_case "gm bad register" `Quick
            test_gm_bad_store_register;
        ] );
      ( "parser",
        [
          Alcotest.test_case "fuzz" `Quick test_parser_fuzz;
          Alcotest.test_case "error positions" `Quick
            test_parser_error_positions;
        ] );
      ("properties", [ qcheck_qlhs_vs_qlf ]);
    ]
