open Prelude

let check = Alcotest.check
let int = Alcotest.int

let test_cantor_examples () =
  check int "pair(0,0)" 0 (Ints.cantor_pair 0 0);
  check int "pair(1,0)" 1 (Ints.cantor_pair 1 0);
  check int "pair(0,1)" 2 (Ints.cantor_pair 0 1);
  let x, y = Ints.cantor_unpair 7 in
  check int "unpair(7) repaired" 7 (Ints.cantor_pair x y)

let test_isqrt () =
  check int "isqrt 0" 0 (Ints.isqrt 0);
  check int "isqrt 1" 1 (Ints.isqrt 1);
  check int "isqrt 15" 3 (Ints.isqrt 15);
  check int "isqrt 16" 4 (Ints.isqrt 16);
  check int "isqrt 1_000_000" 1000 (Ints.isqrt 1_000_000);
  Alcotest.check_raises "negative" (Invalid_argument "Ints.isqrt: negative argument")
    (fun () -> ignore (Ints.isqrt (-1)))

let test_digits () =
  check (Alcotest.list int) "digits 10 base 2" [ 0; 1; 0; 1 ]
    (Ints.digits ~base:2 10);
  check int "of_digits inverse" 12345
    (Ints.of_digits ~base:10 (Ints.digits ~base:10 12345));
  check (Alcotest.list int) "digits 0" [] (Ints.digits ~base:7 0)

let test_pow_bit () =
  check int "2^10" 1024 (Ints.pow 2 10);
  check int "7^0" 1 (Ints.pow 7 0);
  check Alcotest.bool "bit 1 of 2" true (Ints.bit 1 2);
  check Alcotest.bool "bit 0 of 2" false (Ints.bit 0 2);
  check Alcotest.bool "huge bit index" false (Ints.bit 200 5)

let test_range_sum () =
  check (Alcotest.list int) "range 2 5" [ 2; 3; 4 ] (Ints.range 2 5);
  check (Alcotest.list int) "empty range" [] (Ints.range 3 3);
  check int "sum" 9 (Ints.sum [ 2; 3; 4 ]);
  check int "prod empty" 1 (Ints.prod [])

let test_rng_deterministic () =
  let r1 = Ints.Rng.make 42 and r2 = Ints.Rng.make 42 in
  let draws r = List.init 20 (fun _ -> Ints.Rng.int r 1000) in
  check (Alcotest.list int) "same seed, same stream" (draws r1) (draws r2)

let test_index_vectors () =
  check int "3^2 vectors" 9
    (List.length (Combinat.index_vectors ~width:2 ~bound:3));
  check int "width 0" 1 (List.length (Combinat.index_vectors ~width:0 ~bound:5));
  check int "bound 0" 0 (List.length (Combinat.index_vectors ~width:2 ~bound:0));
  let vs = Combinat.index_vectors ~width:2 ~bound:2 in
  check
    (Alcotest.list (Alcotest.list int))
    "lexicographic"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (List.map Array.to_list vs)

let test_fold_cartesian_matches_list () =
  let via_fold =
    Combinat.fold_cartesian
      (fun acc v -> Array.to_list v :: acc)
      [] ~width:3 ~bound:3
    |> List.rev
  in
  let via_list =
    List.map Array.to_list (Combinat.index_vectors ~width:3 ~bound:3)
  in
  check (Alcotest.list (Alcotest.list int)) "same enumeration" via_list via_fold

let test_subsets () =
  check int "2^4 subsets" 16 (List.length (Combinat.subsets [ 1; 2; 3; 4 ]));
  check int "empty set" 1 (List.length (Combinat.subsets []))

let test_sublists_of_size () =
  check int "4 choose 2" 6
    (List.length (Combinat.sublists_of_size 2 [ 1; 2; 3; 4 ]));
  check int "choose 0" 1 (List.length (Combinat.sublists_of_size 0 [ 1; 2 ]));
  check int "choose too many" 0 (List.length (Combinat.sublists_of_size 3 [ 1 ]))

let test_permutations () =
  check int "4!" 24 (List.length (Combinat.permutations [ 1; 2; 3; 4 ]));
  check int "0!" 1 (List.length (Combinat.permutations []))

let test_bell_numbers () =
  List.iteri
    (fun n expected ->
      check int (Printf.sprintf "Bell(%d)" n) expected (Combinat.bell n))
    [ 1; 1; 2; 5; 15; 52 ]

let test_rgs_canonical () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "starts at 0" true
        (Array.length p = 0 || p.(0) = 0))
    (Combinat.restricted_growth_strings 4)

let test_tuple_basics () =
  let u = Tuple.of_list [ 3; 1; 3; 2 ] in
  check int "rank" 4 (Tuple.rank u);
  check (Alcotest.list int) "distinct" [ 3; 1; 2 ] (Tuple.distinct_elements u);
  check (Alcotest.list int) "pattern" [ 0; 1; 0; 2 ]
    (Array.to_list (Tuple.equality_pattern u));
  check Test_support.tuple_testable "swap last two"
    (Tuple.of_list [ 3; 1; 2; 3 ])
    (Tuple.swap_last_two u);
  check Test_support.tuple_testable "drop first"
    (Tuple.of_list [ 1; 3; 2 ])
    (Tuple.drop_first u);
  check Test_support.tuple_testable "project"
    (Tuple.of_list [ 2; 3 ])
    (Tuple.project u [| 3; 0 |]);
  check Alcotest.string "pp" "(3, 1, 3, 2)" (Tuple.to_string u);
  check Alcotest.string "pp empty" "()" (Tuple.to_string Tuple.empty)

let test_tuple_order () =
  Alcotest.(check bool)
    "rank dominates" true
    (Tuple.compare (Tuple.of_list [ 9 ]) (Tuple.of_list [ 0; 0 ]) < 0);
  Alcotest.(check bool)
    "lex within rank" true
    (Tuple.compare (Tuple.of_list [ 0; 1 ]) (Tuple.of_list [ 0; 2 ]) < 0)

let test_tupleset () =
  let s = Tupleset.of_lists [ [ 1; 2 ]; [ 3; 4 ]; [ 1; 2 ] ] in
  check int "dedup" 2 (Tupleset.cardinal s);
  check (Alcotest.option int) "common rank" (Some 2) (Tupleset.common_rank s);
  check (Alcotest.option int) "empty rank" None
    (Tupleset.common_rank Tupleset.empty);
  Alcotest.check_raises "mixed ranks"
    (Invalid_argument "Tupleset.common_rank: mixed ranks") (fun () ->
      ignore (Tupleset.common_rank (Tupleset.of_lists [ [ 1 ]; [ 1; 2 ] ])))

let qcheck_tests =
  let open QCheck2 in
  Test_support.to_alcotest
    [
      Test.make ~count:200 ~name:"cantor pair/unpair roundtrip"
        Gen.(pair (int_bound 10_000) (int_bound 10_000))
        (fun (x, y) -> Ints.cantor_unpair (Ints.cantor_pair x y) = (x, y));
      Test.make ~count:200 ~name:"cantor unpair/pair roundtrip"
        Gen.(int_bound 1_000_000)
        (fun z ->
          let x, y = Ints.cantor_unpair z in
          Ints.cantor_pair x y = z);
      Test.make ~count:200 ~name:"pair_list roundtrip"
        (* Nested Cantor pairing grows doubly exponentially, so stay
           within 3 components below 20 to avoid 63-bit overflow. *)
        Gen.(list_size (int_bound 3) (int_bound 20))
        (fun l -> Ints.unpair_list (Ints.pair_list l) = l);
      Test.make ~count:200 ~name:"isqrt correct"
        Gen.(int_bound 10_000_000)
        (fun n ->
          let r = Ints.isqrt n in
          r * r <= n && (r + 1) * (r + 1) > n);
      Test.make ~count:200 ~name:"equality pattern is RGS"
        Gen.(array_size (int_bound 6) (int_bound 3))
        (fun u ->
          let p = Prelude.Tuple.equality_pattern u in
          Array.length p = Array.length u
          && (Array.length p = 0 || p.(0) = 0));
      Test.make ~count:200 ~name:"pattern reflects equalities"
        Gen.(array_size (pure 5) (int_bound 2))
        (fun u ->
          let p = Prelude.Tuple.equality_pattern u in
          let ok = ref true in
          for i = 0 to 4 do
            for j = 0 to 4 do
              if (u.(i) = u.(j)) <> (p.(i) = p.(j)) then ok := false
            done
          done;
          !ok);
    ]

let () =
  Alcotest.run "prelude"
    [
      ( "ints",
        [
          Alcotest.test_case "cantor examples" `Quick test_cantor_examples;
          Alcotest.test_case "isqrt" `Quick test_isqrt;
          Alcotest.test_case "digits" `Quick test_digits;
          Alcotest.test_case "pow/bit" `Quick test_pow_bit;
          Alcotest.test_case "range/sum" `Quick test_range_sum;
          Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        ] );
      ( "combinat",
        [
          Alcotest.test_case "index vectors" `Quick test_index_vectors;
          Alcotest.test_case "fold_cartesian" `Quick
            test_fold_cartesian_matches_list;
          Alcotest.test_case "subsets" `Quick test_subsets;
          Alcotest.test_case "sublists of size" `Quick test_sublists_of_size;
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "bell numbers" `Quick test_bell_numbers;
          Alcotest.test_case "rgs canonical" `Quick test_rgs_canonical;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "order" `Quick test_tuple_order;
          Alcotest.test_case "tupleset" `Quick test_tupleset;
        ] );
      ("properties", qcheck_tests);
    ]
