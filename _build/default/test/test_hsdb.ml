open Prelude

let t = Tuple.of_list
let check = Alcotest.check

let assert_valid ?(max_rank = 2) ?(window = 6) inst =
  match Hs.Hsdb.validate ~max_rank ~window inst with
  | [] -> ()
  | issues -> Alcotest.fail (String.concat "\n" issues)

(* -------------------------------------------------------------------- *)
(* Instance representations are consistent                              *)

let test_validate_clique () = assert_valid (Hs.Hsinstances.infinite_clique ())
let test_validate_empty () = assert_valid (Hs.Hsinstances.empty_graph ())
let test_validate_mod2 () = assert_valid (Hs.Hsinstances.mod_cliques 2)
let test_validate_mod3 () = assert_valid (Hs.Hsinstances.mod_cliques 3)
let test_validate_triangles () = assert_valid (Hs.Hsinstances.triangles ())
let test_validate_rado () = assert_valid ~window:5 (Hs.Hsinstances.rado ())

let test_validate_unary () =
  assert_valid (Hs.Hsinstances.unary_finite_set ~members:[ 0; 1; 2 ])

let test_validate_directed_edges () =
  assert_valid
    (Hs.Hsinstances.disjoint_copies [ Hs.Hsinstances.directed_edge_component ])

let test_validate_mixed_components () =
  assert_valid
    (Hs.Hsinstances.disjoint_copies
       [
         Hs.Hsinstances.triangle_component;
         Hs.Hsinstances.undirected_path_component 3;
       ])

(* -------------------------------------------------------------------- *)
(* Class counts                                                         *)

let test_clique_class_counts () =
  let c = Hs.Hsinstances.infinite_clique () in
  (* Tuples in the clique are classified by equality pattern alone, so
     |T^n| is the Bell number B(n). *)
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "clique T^%d" n)
        (Combinat.bell n)
        (Hs.Hsdb.class_count c n))
    [ 0; 1; 2; 3; 4 ]

let test_rado_class_counts () =
  let r = Hs.Hsinstances.rado () in
  (* Rado classes = local isomorphism classes of irreflexive symmetric
     graph diagrams: rank 2 -> 3, rank 3 -> 15. *)
  check Alcotest.int "rado T^1" 1 (Hs.Hsdb.class_count r 1);
  check Alcotest.int "rado T^2" 3 (Hs.Hsdb.class_count r 2);
  check Alcotest.int "rado T^3" 15 (Hs.Hsdb.class_count r 3);
  (* Cross-check against the diagram enumeration with a graph filter. *)
  let keep d =
    let m = Localiso.Diagram.blocks d in
    let ok = ref true in
    for x = 0 to m - 1 do
      if Localiso.Diagram.atom d ~rel:0 [| x; x |] then ok := false;
      for y = 0 to m - 1 do
        if
          Localiso.Diagram.atom d ~rel:0 [| x; y |]
          <> Localiso.Diagram.atom d ~rel:0 [| y; x |]
        then ok := false
      done
    done;
    !ok
  in
  check Alcotest.int "rado T^3 = graph diagram count"
    (List.length (Localiso.Diagram.enumerate ~keep ~db_type:[| 2 |] ~rank:3 ()))
    (Hs.Hsdb.class_count r 3)

let test_unary_class_counts () =
  let u = Hs.Hsinstances.unary_finite_set ~members:[ 0; 1; 2 ] in
  check Alcotest.int "unary T^1" 2 (Hs.Hsdb.class_count u 1);
  check Alcotest.int "unary T^2" 6 (Hs.Hsdb.class_count u 2)

let test_mod_class_counts () =
  let m2 = Hs.Hsinstances.mod_cliques 2 in
  check Alcotest.int "mod2 T^1" 1 (Hs.Hsdb.class_count m2 1);
  check Alcotest.int "mod2 T^2" 3 (Hs.Hsdb.class_count m2 2)

let test_directed_edge_classes () =
  let d =
    Hs.Hsinstances.disjoint_copies [ Hs.Hsinstances.directed_edge_component ]
  in
  (* Sources and targets are non-equivalent: two rank-1 classes. *)
  check Alcotest.int "arrow T^1" 2 (Hs.Hsdb.class_count d 1)

(* -------------------------------------------------------------------- *)
(* Representation operations                                            *)

let test_representative () =
  let c = Hs.Hsinstances.infinite_clique () in
  let rep = Hs.Hsdb.representative c (t [ 7; 7; 9 ]) in
  check Test_support.tuple_testable "canonical pattern" (t [ 0; 0; 1 ]) rep

let test_rel_mem_matches_db () =
  let tri = Hs.Hsinstances.triangles () in
  List.iter
    (fun (x, y) ->
      check Alcotest.bool
        (Printf.sprintf "edge (%d,%d)" x y)
        (Rdb.Database.mem (Hs.Hsdb.db tri) 0 (t [ x; y ]))
        (Hs.Hsdb.rel_mem tri 0 (t [ x; y ])))
    [ (0, 1); (0, 2); (2, 3); (3, 4); (4, 4); (5, 3) ]

let test_reps_are_paths () =
  let r = Hs.Hsinstances.rado () in
  let c1 = Hs.Hsdb.reps r 0 in
  Alcotest.(check bool) "C1 nonempty" true (not (Tupleset.is_empty c1));
  Tupleset.iter
    (fun p ->
      Alcotest.(check bool) "rep is a path" true (Hs.Hsdb.is_path r p);
      Alcotest.(check bool) "rep is in R" true
        (Rdb.Database.mem (Hs.Hsdb.db r) 0 p))
    c1

let test_stretch_clique () =
  let c = Hs.Hsinstances.infinite_clique () in
  let s = Hs.Hsdb.stretch c ~by:(t [ 0 ]) in
  (* After marking one clique element: equal-to-it or not. *)
  check Alcotest.int "stretched rank 1" 2 (Hs.Hsdb.class_count s 1);
  check Alcotest.int "stretched type width" 2
    (Array.length (Hs.Hsdb.db_type s));
  assert_valid ~max_rank:1 s

let test_stretch_invalid () =
  let c = Hs.Hsinstances.infinite_clique () in
  Alcotest.check_raises "not a path"
    (Invalid_argument "Hsdb.stretch: not a tree path") (fun () ->
      ignore (Hs.Hsdb.stretch c ~by:(t [ 5 ])))

let test_line_not_hs_via_stretching () =
  (* Proposition 3.1 flavour: stretching the line by one point leaves
     unboundedly many rank-1 classes (distance to the marked point). *)
  let stretched_equiv x y =
    Hs.Hsinstances.line_equiv (t [ 0; x ]) (t [ 0; y ])
  in
  let representatives =
    List.fold_left
      (fun reps x ->
        if List.exists (fun y -> stretched_equiv x y) reps then reps
        else x :: reps)
      []
      (Ints.range 0 12)
  in
  Alcotest.(check bool) "at least 6 classes among 12 nodes" true
    (List.length representatives >= 6)

let test_less_than_equiv_trivial () =
  Alcotest.(check bool) "reflexive" true
    (Hs.Hsinstances.less_than_equiv (t [ 1; 2 ]) (t [ 1; 2 ]));
  Alcotest.(check bool) "only identity" false
    (Hs.Hsinstances.less_than_equiv (t [ 1; 2 ]) (t [ 2; 3 ]))


(* -------------------------------------------------------------------- *)
(* Extended instances: coloured random structure, bipartite, lines      *)

let test_random_colored_valid () =
  assert_valid ~max_rank:2 ~window:5 (Hs.Hsinstances.random_colored_graph ())

let test_random_colored_counts () =
  let rc = Hs.Hsinstances.random_colored_graph () in
  (* Rank 1: two colours.  Rank 2: 2 (equal pair) + 2·2·2 (colours ×
     edge/non-edge) = 10. *)
  check Alcotest.int "T^1" 2 (Hs.Hsdb.class_count rc 1);
  check Alcotest.int "T^2" 10 (Hs.Hsdb.class_count rc 2);
  (* Equivalence is local isomorphism (Prop 3.2 for type (1,2)). *)
  let db = Hs.Hsdb.db rc in
  List.iter
    (fun (u, v) ->
      check Alcotest.bool
        (Printf.sprintf "%s ~ %s" (Tuple.to_string u) (Tuple.to_string v))
        (Localiso.Liso.check_same db u v)
        (Hs.Hsdb.equiv rc u v))
    [
      (t [ 0; 2 ], t [ 4; 6 ]);
      (t [ 1; 3 ], t [ 0; 2 ]);
      (t [ 0; 1 ], t [ 2; 3 ]);
    ]

let test_random_colored_extension_sentence () =
  (* Every vertex has neighbours of both colours. *)
  let rc = Hs.Hsinstances.random_colored_graph () in
  let s =
    Rlogic.Parser.formula
      "forall x. (exists y. R2(x, y) && R1(y)) && (exists z. R2(x, z) && \
       !R1(z))"
  in
  Alcotest.(check bool) "both-colour neighbours" true
    (Hs.Fo_eval.eval_sentence rc s)

let test_bipartite_matches_mod2_tree () =
  let bp = Hs.Hsinstances.complete_bipartite () in
  let m2 = Hs.Hsinstances.mod_cliques 2 in
  assert_valid ~max_rank:2 bp;
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "same class count at rank %d" n)
        (Hs.Hsdb.class_count m2 n)
        (Hs.Hsdb.class_count bp n))
    [ 1; 2; 3 ];
  (* Same automorphism structure, complementary edges: edges exist in
     both, so two rounds do not separate them; a triangle (possible in
     mod2's cliques, impossible bipartitely) does at round 3. *)
  check (Alcotest.option Alcotest.int) "bp vs mod2" (Some 3)
    (Hs.Elem.distinguishing_round bp m2);
  (* Odd cycles are impossible in a bipartite graph. *)
  let triangle =
    Rlogic.Parser.formula
      "exists a. exists b. exists c. R1(a, b) && R1(b, c) && R1(a, c)"
  in
  Alcotest.(check bool) "no triangle in bipartite" false
    (Hs.Fo_eval.eval_sentence bp triangle);
  Alcotest.(check bool) "triangle in mod2 cliques" true
    (Hs.Fo_eval.eval_sentence m2 triangle)

let test_lines_strategy () =
  let one = { Hs.Lines.nlines = 1 } and two = { Hs.Lines.nlines = 2 } in
  (* Elementarily equivalent at every tested quantifier rank... *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "duplicator survives %d rounds" r)
        true
        (Hs.Lines.strategy_wins ~a:one ~b:two ~r))
    [ 0; 1; 2; 3 ];
  (* ... yet not isomorphic: the Corollary 3.1 contrast for non-hs
     structures. *)
  Alcotest.(check bool) "not isomorphic" false (Hs.Lines.isomorphic one two);
  Alcotest.(check bool) "self pair isomorphic" true
    (Hs.Lines.isomorphic two two)

let test_lines_rdb_and_equiv () =
  let two = { Hs.Lines.nlines = 2 } in
  let db = Hs.Lines.to_rdb two in
  let p l pos = Hs.Lines.encode two { Hs.Lines.line = l; pos } in
  (* encode/decode round trip *)
  List.iter
    (fun (l, pos) ->
      let pt = { Hs.Lines.line = l; pos } in
      Alcotest.(check bool) "roundtrip" true
        (Hs.Lines.decode two (Hs.Lines.encode two pt) = pt))
    [ (0, 0); (1, 0); (0, -3); (1, 5); (0, 7); (1, -8) ];
  (* adjacency through the coding *)
  Alcotest.(check bool) "adjacent on a line" true
    (Rdb.Database.mem db 0 (t [ p 0 0; p 0 1 ]));
  Alcotest.(check bool) "not adjacent across lines" false
    (Rdb.Database.mem db 0 (t [ p 0 0; p 1 1 ]));
  Alcotest.(check bool) "not adjacent at distance 2" false
    (Rdb.Database.mem db 0 (t [ p 0 0; p 0 2 ]));
  (* equivalence: translations, reflections, line swaps *)
  Alcotest.(check bool) "translation" true
    (Hs.Lines.equiv two (t [ p 0 0; p 0 2 ]) (t [ p 0 5; p 0 7 ]));
  Alcotest.(check bool) "reflection" true
    (Hs.Lines.equiv two (t [ p 0 0; p 0 2 ]) (t [ p 0 5; p 0 3 ]));
  Alcotest.(check bool) "line swap" true
    (Hs.Lines.equiv two (t [ p 0 0; p 0 1 ]) (t [ p 1 4; p 1 5 ]));
  Alcotest.(check bool) "distances differ" false
    (Hs.Lines.equiv two (t [ p 0 0; p 0 2 ]) (t [ p 0 0; p 0 3 ]));
  Alcotest.(check bool) "same vs different lines" false
    (Hs.Lines.equiv two (t [ p 0 0; p 0 2 ]) (t [ p 0 0; p 1 2 ]))

let test_lines_equiv_refines_liso () =
  let two = { Hs.Lines.nlines = 2 } in
  let db = Hs.Lines.to_rdb two in
  let rng = Ints.Rng.make 7 in
  for _ = 1 to 200 do
    let u = Array.init 2 (fun _ -> Ints.Rng.int rng 12) in
    let v = Array.init 2 (fun _ -> Ints.Rng.int rng 12) in
    if Hs.Lines.equiv two u v then
      Alcotest.(check bool) "equiv implies local iso" true
        (Localiso.Liso.check_same db u v)
  done

(* -------------------------------------------------------------------- *)
(* EF machinery                                                         *)

let test_vnr_vs_direct_game () =
  List.iter
    (fun inst ->
      let name = Hs.Hsdb.name inst in
      List.iter
        (fun (n, r) ->
          let p = Hs.Ef.vnr inst ~n ~r in
          let lookup u =
            let rec find i =
              if Tuple.equal p.Hs.Ef.items.(i) u then p.Hs.Ef.cls.(i)
              else find (i + 1)
            in
            find 0
          in
          let paths = Hs.Hsdb.paths inst n in
          List.iter
            (fun u ->
              List.iter
                (fun v ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s n=%d r=%d %s~%s" name n r
                       (Tuple.to_string u) (Tuple.to_string v))
                    (Hs.Ef.equiv_r inst ~r u v)
                    (lookup u = lookup v))
                paths)
            paths)
        [ (1, 1); (2, 1) ])
    [
      Hs.Hsinstances.mod_cliques 2;
      Hs.Hsinstances.triangles ();
      Hs.Hsinstances.disjoint_copies
        [ Hs.Hsinstances.undirected_path_component 3 ];
    ]

let test_down_identity () =
  (* Proposition 3.7: V^{n+1}_r ↓ = V^n_{r+1}. *)
  List.iter
    (fun inst ->
      List.iter
        (fun (n, r) ->
          let lhs = Hs.Ef.down inst ~n (Hs.Ef.vnr inst ~n:(n + 1) ~r) in
          let rhs = Hs.Ef.vnr inst ~n ~r:(r + 1) in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d r=%d" (Hs.Hsdb.name inst) n r)
            true
            (Hs.Ef.same_partition lhs rhs))
        [ (1, 0); (1, 1); (2, 0) ])
    [ Hs.Hsinstances.mod_cliques 2; Hs.Hsinstances.triangles () ]

let test_r0_values () =
  (* The clique's classes are already separated by diagrams. *)
  check Alcotest.int "clique r0" 0
    (Hs.Ef.r0 (Hs.Hsinstances.infinite_clique ()) ~n:2);
  (* On copies of the 3-path, some rank-2 pairs (e.g. (middle, end')
     vs (end, middle')) share a diagram and even share extension
     diagrams; only two rounds expose the degree difference. *)
  let p3 =
    Hs.Hsinstances.disjoint_copies
      [ Hs.Hsinstances.undirected_path_component 3 ]
  in
  check Alcotest.int "path3 rank-2 r0" 2 (Hs.Ef.r0 p3 ~n:2);
  Alcotest.(check bool) "path3 needs at least one refinement" true
    (not (Hs.Ef.all_singletons (Hs.Ef.v0 p3 ~n:2)))

let test_v0_matches_diagram_partition () =
  let tri = Hs.Hsinstances.triangles () in
  let p = Hs.Ef.v0 tri ~n:2 in
  Alcotest.(check bool) "not all singletons before refinement" true
    (p.Hs.Ef.nclasses <= Array.length p.Hs.Ef.items)

let test_coding_tuple_clique () =
  let c = Hs.Hsinstances.infinite_clique () in
  let d = Hs.Ef.find_coding_tuple c in
  Alcotest.(check bool) "covers" true (Hs.Ef.projections_cover c d);
  check Alcotest.int "clique coding tuple has rank 2" 2 (Tuple.rank d)

let test_coding_tuple_triangles () =
  let tri = Hs.Hsinstances.triangles () in
  let d = Hs.Ef.find_coding_tuple tri in
  Alcotest.(check bool) "covers" true (Hs.Ef.projections_cover tri d)

(* -------------------------------------------------------------------- *)
(* FO evaluation over representatives                                   *)

let sentence s = Rlogic.Parser.formula s

let test_sentences_on_instances () =
  let clique = Hs.Hsinstances.infinite_clique () in
  let empty = Hs.Hsinstances.empty_graph () in
  let tri = Hs.Hsinstances.triangles () in
  let complete = sentence "forall x. forall y. x != y -> R1(x, y)" in
  let has_edge = sentence "exists x. exists y. x != y && R1(x, y)" in
  let has_k4 =
    sentence
      "exists a. exists b. exists c. exists d. a != b && a != c && a != d && \
       b != c && b != d && c != d && R1(a, b) && R1(a, c) && R1(a, d) && \
       R1(b, c) && R1(b, d) && R1(c, d)"
  in
  Alcotest.(check bool) "clique is complete" true
    (Hs.Fo_eval.eval_sentence clique complete);
  Alcotest.(check bool) "empty is not complete" false
    (Hs.Fo_eval.eval_sentence empty complete);
  Alcotest.(check bool) "triangles not complete" false
    (Hs.Fo_eval.eval_sentence tri complete);
  Alcotest.(check bool) "clique has an edge" true
    (Hs.Fo_eval.eval_sentence clique has_edge);
  Alcotest.(check bool) "empty has no edge" false
    (Hs.Fo_eval.eval_sentence empty has_edge);
  Alcotest.(check bool) "triangles have an edge" true
    (Hs.Fo_eval.eval_sentence tri has_edge);
  Alcotest.(check bool) "clique has K4" true
    (Hs.Fo_eval.eval_sentence clique has_k4);
  Alcotest.(check bool) "triangles have no K4" false
    (Hs.Fo_eval.eval_sentence tri has_k4)

let test_rado_extension_sentence () =
  let rado = Hs.Hsinstances.rado () in
  (* Any two distinct points have a common neighbour — a 2-extension
     consequence. *)
  let s =
    sentence
      "forall x. forall y. x != y -> (exists z. z != x && z != y && R1(z, x) \
       && R1(z, y))"
  in
  Alcotest.(check bool) "common neighbour" true (Hs.Fo_eval.eval_sentence rado s)

let test_mem_arbitrary_tuples () =
  let tri = Hs.Hsinstances.triangles () in
  let q =
    Rlogic.Parser.query
      "{(x, y) | x != y && !R1(x, y) && (exists z. R1(x, z) && R1(y, z))}"
  in
  (* Two non-adjacent vertices with a common neighbour: impossible across
     triangles. *)
  check (Alcotest.option Alcotest.bool) "across triangles" (Some false)
    (Hs.Fo_eval.mem tri q (t [ 0; 3 ]));
  (* Same triangle, distinct vertices are adjacent, so excluded. *)
  check (Alcotest.option Alcotest.bool) "same triangle" (Some false)
    (Hs.Fo_eval.mem tri q (t [ 0; 1 ]));
  let clique = Hs.Hsinstances.infinite_clique () in
  let q2 = Rlogic.Parser.query "{(x, y) | exists z. R1(x, z) && R1(z, y)}" in
  check (Alcotest.option Alcotest.bool) "clique 2-path, equal endpoints"
    (Some true)
    (Hs.Fo_eval.mem clique q2 (t [ 4; 4 ]));
  check (Alcotest.option Alcotest.bool) "clique 2-path" (Some true)
    (Hs.Fo_eval.mem clique q2 (t [ 4; 9 ]))

let test_eval_upto_agrees_with_qf () =
  (* For quantifier-free queries, reps-based evaluation must agree with
     direct L- evaluation on a window. *)
  let insts =
    [
      Hs.Hsinstances.triangles ();
      Hs.Hsinstances.mod_cliques 2;
      Hs.Hsinstances.rado ();
    ]
  in
  let q = Rlogic.Parser.query "{(x, y) | R1(x, y) && x != y}" in
  List.iter
    (fun inst ->
      check Test_support.tupleset_testable
        (Hs.Hsdb.name inst)
        (Rlogic.Qf_eval.eval_upto (Hs.Hsdb.db inst) q ~cutoff:5)
        (Hs.Fo_eval.eval_upto inst q ~cutoff:5))
    insts

let test_eval_reps_form () =
  let tri = Hs.Hsinstances.triangles () in
  let q = Rlogic.Parser.query "{(x, y) | R1(x, y)}" in
  let reps = Hs.Fo_eval.eval_reps tri q ~rank:2 in
  check Test_support.tupleset_testable "edge representatives"
    (Hs.Hsdb.reps tri 0) reps

(* -------------------------------------------------------------------- *)
(* Hintikka formulas and EF games between structures                    *)

let test_hintikka_characterizes_game () =
  let tri = Hs.Hsinstances.triangles () in
  let p3 =
    Hs.Hsinstances.disjoint_copies
      [ Hs.Hsinstances.undirected_path_component 3 ]
  in
  List.iter
    (fun r ->
      let f = Hs.Hintikka.sentence tri ~r in
      Alcotest.(check bool)
        (Printf.sprintf "sentence of depth %d true in its own structure" r)
        true
        (Hs.Fo_eval.eval_sentence tri f);
      Alcotest.(check bool)
        (Printf.sprintf "other structure satisfies it iff duplicator wins %d" r)
        (Hs.Elem.ef_game tri p3 ~r)
        (Hs.Fo_eval.eval_sentence p3 f))
    [ 0; 1; 2 ]

let test_hintikka_formula_on_paths () =
  let tri = Hs.Hsinstances.triangles () in
  let paths = Hs.Hsdb.paths tri 2 in
  let r = 1 in
  List.iter
    (fun u ->
      let f = Hs.Hintikka.formula tri ~path:u ~r in
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "phi^%d_%s at %s" r (Tuple.to_string u)
               (Tuple.to_string v))
            (Hs.Elem.ef_game_from tri u tri v ~r)
            (Hs.Fo_eval.holds tri ~path:v ~vars:[ "x1"; "x2" ] f))
        paths)
    paths

let test_ef_game_distinguishes () =
  let clique = Hs.Hsinstances.infinite_clique () in
  let empty = Hs.Hsinstances.empty_graph () in
  check (Alcotest.option Alcotest.int) "clique vs empty at round 2" (Some 2)
    (Hs.Elem.distinguishing_round clique empty);
  let m2 = Hs.Hsinstances.mod_cliques 2 in
  let m3 = Hs.Hsinstances.mod_cliques 3 in
  check (Alcotest.option Alcotest.int) "mod2 vs mod3 at round 3" (Some 3)
    (Hs.Elem.distinguishing_round m2 m3);
  check (Alcotest.option Alcotest.int) "triangles vs triangles" None
    (Hs.Elem.distinguishing_round ~cap:3 (Hs.Hsinstances.triangles ())
       (Hs.Hsinstances.triangles ()))

let test_separating_sentence () =
  let clique = Hs.Hsinstances.infinite_clique () in
  let empty = Hs.Hsinstances.empty_graph () in
  match Hs.Elem.separating_sentence clique empty with
  | None -> Alcotest.fail "expected a separating sentence"
  | Some s ->
      Alcotest.(check bool) "true in clique" true
        (Hs.Fo_eval.eval_sentence clique s);
      Alcotest.(check bool) "false in empty" false
        (Hs.Fo_eval.eval_sentence empty s)

(* -------------------------------------------------------------------- *)
(* Oracle accounting (Definition 3.9's oracle model)                    *)

let test_oracle_accounting () =
  let tri = Hs.Hsinstances.triangles () in
  Hs.Hsdb.reset_oracle_calls tri;
  let c0, e0 = Hs.Hsdb.oracle_calls tri in
  check Alcotest.int "children calls reset" 0 c0;
  check Alcotest.int "equiv calls reset" 0 e0;
  (* A representative lookup asks finitely many questions of both
     oracles. *)
  ignore (Hs.Hsdb.representative tri (t [ 4; 5 ]));
  let c1, e1 = Hs.Hsdb.oracle_calls tri in
  Alcotest.(check bool) "T_B oracle consulted" true (c1 > 0);
  Alcotest.(check bool) "≅_B oracle consulted" true (e1 > 0);
  (* Children answers are memoized: re-walking the same tree level adds
     no new T_B questions. *)
  ignore (Hs.Hsdb.paths tri 2);
  let c2, _ = Hs.Hsdb.oracle_calls tri in
  ignore (Hs.Hsdb.paths tri 2);
  let c3, _ = Hs.Hsdb.oracle_calls tri in
  check Alcotest.int "memoized" c2 c3

let test_rado_rank4_count () =
  (* |T^4| for the Rado graph = irreflexive symmetric diagrams of rank 4:
     Σ_m S(4,m)·2^C(m,2) = 1 + 7·2 + 6·8 + 1·64 = 127. *)
  let rado = Hs.Hsinstances.rado () in
  check Alcotest.int "rado T^4" 127 (Hs.Hsdb.class_count rado 4)

let qcheck_random_components =
  let open QCheck2 in
  (* Random connected components: a random spanning path plus random
     extra undirected edges. *)
  let gen_component =
    Gen.(
      int_range 2 4 >>= fun size ->
      list_size (int_bound 3) (pair (int_bound (size - 1)) (int_bound (size - 1)))
      >|= fun extra ->
      let path_edges =
        List.concat_map
          (fun i -> [ (i, i + 1); (i + 1, i) ])
          (Ints.range 0 (size - 1))
      in
      let extra_edges =
        List.concat_map
          (fun (x, y) -> if x <> y then [ (x, y); (y, x) ] else [])
          extra
      in
      Hs.Hsinstances.component ~vertices:size ~edges:(path_edges @ extra_edges)
        ())
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:25 ~name:"random component unions validate" gen_component
       (fun comp ->
         let inst = Hs.Hsinstances.disjoint_copies [ comp ] in
         Hs.Hsdb.validate ~max_rank:2 ~window:5 inst = []))

(* -------------------------------------------------------------------- *)
(* The Corollary 3.1 amalgam                                            *)

let test_amalgam_isomorphic_case () =
  let tri1 = Hs.Hsinstances.triangles () in
  let tri2 = Hs.Hsinstances.triangles () in
  let am, a, b =
    Hs.Elem.amalgam ~cross:(Some (Hs.Hsdb.equiv tri1)) tri1 tri2
  in
  (* B1 ≅ B2, so a ≅_B b. *)
  Alcotest.(check bool) "a ~ b" true (Hs.Hsdb.equiv am (t [ a ]) (t [ b ]));
  assert_valid ~max_rank:2 ~window:6 am;
  (* ... and the duplicator survives EF rounds from (a) vs (b). *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "a ≡_%d b" r)
        true
        (Hs.Ef.equiv_r am ~r (t [ a ]) (t [ b ])))
    [ 0; 1; 2 ]

let test_amalgam_non_isomorphic_case () =
  let clique = Hs.Hsinstances.infinite_clique () in
  let empty = Hs.Hsinstances.empty_graph () in
  let am, a, b = Hs.Elem.amalgam clique empty in
  Alcotest.(check bool) "a !~ b" false (Hs.Hsdb.equiv am (t [ a ]) (t [ b ]));
  assert_valid ~max_rank:2 ~window:6 am;
  (* Some finite round separates (a) from (b) — the Prop 3.5 direction
     applied inside the amalgam. *)
  let separated =
    List.exists
      (fun r -> not (Hs.Ef.equiv_r am ~r (t [ a ]) (t [ b ])))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "separated at some round" true separated

let test_amalgam_type_mismatch () =
  Alcotest.check_raises "types differ"
    (Invalid_argument "Elem.amalgam: database types differ") (fun () ->
      ignore
        (Hs.Elem.amalgam
           (Hs.Hsinstances.infinite_clique ())
           (Hs.Hsinstances.unary_finite_set ~members:[ 0 ])))

let test_amalgam_structure () =
  let tri1 = Hs.Hsinstances.triangles () in
  let am, a, b = Hs.Elem.amalgam tri1 (Hs.Hsinstances.infinite_clique ()) in
  let db = Hs.Hsdb.db am in
  (* Type (2, 2): S1 and E. *)
  check (Alcotest.array Alcotest.int) "type" [| 2; 2 |] (Hs.Hsdb.db_type am);
  (* E connects a to left codes, b to right codes. *)
  Alcotest.(check bool) "E(a, left0)" true (Rdb.Database.mem db 1 (t [ a; 2 ]));
  Alcotest.(check bool) "E(b, right0)" true (Rdb.Database.mem db 1 (t [ b; 3 ]));
  Alcotest.(check bool) "no E(a, right0)" false
    (Rdb.Database.mem db 1 (t [ a; 3 ]));
  (* S1 holds within sides only: triangles edge 0-1 is codes 2-4. *)
  Alcotest.(check bool) "left edge" true (Rdb.Database.mem db 0 (t [ 2; 4 ]));
  Alcotest.(check bool) "no cross edge" false
    (Rdb.Database.mem db 0 (t [ 2; 3 ]))

(* -------------------------------------------------------------------- *)
(* Properties                                                           *)

let qcheck_tests =
  let open QCheck2 in
  let tri = Hs.Hsinstances.triangles () in
  let rado = Hs.Hsinstances.rado () in
  let small_tuple = Gen.array_size (Gen.int_range 1 3) (Gen.int_bound 8) in
  Test_support.to_alcotest
    [
      Test.make ~count:100 ~name:"triangles: equiv refines local iso"
        Gen.(pair small_tuple small_tuple)
        (fun (u, v) ->
          (not (Hs.Hsdb.equiv tri u v))
          || Localiso.Liso.check_same (Hs.Hsdb.db tri) u v);
      Test.make ~count:100 ~name:"triangles: representative is equivalent"
        small_tuple
        (fun u ->
          let p = Hs.Hsdb.representative tri u in
          Hs.Hsdb.equiv tri u p && Hs.Hsdb.is_path tri p);
      Test.make ~count:100 ~name:"rado: equiv is exactly local iso (Prop 3.2)"
        Gen.(pair small_tuple small_tuple)
        (fun (u, v) ->
          Hs.Hsdb.equiv rado u v
          = Localiso.Liso.check_same (Hs.Hsdb.db rado) u v);
      Test.make ~count:60 ~name:"triangles: rel_mem matches raw relation"
        Gen.(pair (int_bound 8) (int_bound 8))
        (fun (x, y) ->
          Hs.Hsdb.rel_mem tri 0 [| x; y |]
          = Rdb.Database.mem (Hs.Hsdb.db tri) 0 [| x; y |]);
    ]

let () =
  Alcotest.run "hsdb"
    [
      ( "validate",
        [
          Alcotest.test_case "clique" `Quick test_validate_clique;
          Alcotest.test_case "empty" `Quick test_validate_empty;
          Alcotest.test_case "mod2" `Quick test_validate_mod2;
          Alcotest.test_case "mod3" `Quick test_validate_mod3;
          Alcotest.test_case "triangles" `Quick test_validate_triangles;
          Alcotest.test_case "rado" `Quick test_validate_rado;
          Alcotest.test_case "unary fcf" `Quick test_validate_unary;
          Alcotest.test_case "directed edges" `Quick
            test_validate_directed_edges;
          Alcotest.test_case "mixed components" `Quick
            test_validate_mixed_components;
        ] );
      ( "counts",
        [
          Alcotest.test_case "clique = Bell" `Quick test_clique_class_counts;
          Alcotest.test_case "rado = graph diagrams" `Quick
            test_rado_class_counts;
          Alcotest.test_case "unary" `Quick test_unary_class_counts;
          Alcotest.test_case "mod cliques" `Quick test_mod_class_counts;
          Alcotest.test_case "directed edge" `Quick test_directed_edge_classes;
        ] );
      ( "representation",
        [
          Alcotest.test_case "representative" `Quick test_representative;
          Alcotest.test_case "rel_mem" `Quick test_rel_mem_matches_db;
          Alcotest.test_case "reps are paths" `Quick test_reps_are_paths;
          Alcotest.test_case "stretch clique" `Quick test_stretch_clique;
          Alcotest.test_case "stretch invalid" `Quick test_stretch_invalid;
          Alcotest.test_case "line not hs (Prop 3.1)" `Quick
            test_line_not_hs_via_stretching;
          Alcotest.test_case "less-than equiv trivial" `Quick
            test_less_than_equiv_trivial;
        ] );
      ( "extended-instances",
        [
          Alcotest.test_case "random colored valid" `Quick
            test_random_colored_valid;
          Alcotest.test_case "random colored counts" `Quick
            test_random_colored_counts;
          Alcotest.test_case "random colored extension" `Quick
            test_random_colored_extension_sentence;
          Alcotest.test_case "bipartite vs mod2" `Quick
            test_bipartite_matches_mod2_tree;
          Alcotest.test_case "lines: EF strategy (Cor 3.1 contrast)" `Quick
            test_lines_strategy;
          Alcotest.test_case "lines: rdb and equivalence" `Quick
            test_lines_rdb_and_equiv;
          Alcotest.test_case "lines: equiv refines liso" `Quick
            test_lines_equiv_refines_liso;
        ] );
      ( "ef",
        [
          Alcotest.test_case "vnr vs direct game" `Slow test_vnr_vs_direct_game;
          Alcotest.test_case "down identity (Prop 3.7)" `Quick
            test_down_identity;
          Alcotest.test_case "r0 values" `Quick test_r0_values;
          Alcotest.test_case "v0 sanity" `Quick
            test_v0_matches_diagram_partition;
          Alcotest.test_case "coding tuple (clique)" `Quick
            test_coding_tuple_clique;
          Alcotest.test_case "coding tuple (triangles)" `Quick
            test_coding_tuple_triangles;
        ] );
      ( "fo_eval",
        [
          Alcotest.test_case "sentences" `Quick test_sentences_on_instances;
          Alcotest.test_case "rado extension sentence" `Quick
            test_rado_extension_sentence;
          Alcotest.test_case "membership" `Quick test_mem_arbitrary_tuples;
          Alcotest.test_case "eval_upto vs qf" `Quick
            test_eval_upto_agrees_with_qf;
          Alcotest.test_case "eval reps form" `Quick test_eval_reps_form;
        ] );
      ( "elem",
        [
          Alcotest.test_case "hintikka sentences" `Quick
            test_hintikka_characterizes_game;
          Alcotest.test_case "hintikka formulas" `Quick
            test_hintikka_formula_on_paths;
          Alcotest.test_case "distinguishing rounds" `Quick
            test_ef_game_distinguishes;
          Alcotest.test_case "separating sentence" `Quick
            test_separating_sentence;
        ] );
      ( "oracle-accounting",
        [
          Alcotest.test_case "counting and memoization" `Quick
            test_oracle_accounting;
          Alcotest.test_case "rado rank 4 = 127 classes" `Slow
            test_rado_rank4_count;
          qcheck_random_components;
        ] );
      ( "amalgam",
        [
          Alcotest.test_case "isomorphic case" `Quick
            test_amalgam_isomorphic_case;
          Alcotest.test_case "non-isomorphic case" `Quick
            test_amalgam_non_isomorphic_case;
          Alcotest.test_case "type mismatch" `Quick test_amalgam_type_mismatch;
          Alcotest.test_case "structure" `Quick test_amalgam_structure;
        ] );
      ("properties", qcheck_tests);
    ]
