open Prelude
open Rdb

let check = Alcotest.check
let t = Tuple.of_list

let test_relation_instrumentation () =
  let r = Relation.make ~name:"EVEN" ~arity:1 (fun u -> u.(0) mod 2 = 0) in
  check Alcotest.int "no calls yet" 0 (Relation.calls r);
  Alcotest.(check bool) "4 even" true (Relation.mem r (t [ 4 ]));
  Alcotest.(check bool) "5 odd" false (Relation.mem r (t [ 5 ]));
  check Alcotest.int "two calls" 2 (Relation.calls r);
  Relation.reset_calls r;
  check Alcotest.int "reset" 0 (Relation.calls r)

let test_relation_arity_check () =
  let r = Relation.make ~arity:2 (fun _ -> true) in
  Alcotest.check_raises "wrong rank"
    (Invalid_argument "Relation.mem: R expects rank 2, got 1") (fun () ->
      ignore (Relation.mem r (t [ 1 ])))

let test_relation_logging () =
  let r = Relation.make ~arity:1 (fun u -> u.(0) > 2) in
  let r', get = Relation.logged r in
  ignore (Relation.mem r' (t [ 1 ]));
  ignore (Relation.mem r' (t [ 5 ]));
  let log = get () in
  check Alcotest.int "two entries" 2 (List.length log);
  let u, ans = List.nth log 0 in
  check Test_support.tuple_testable "first query" (t [ 1 ]) u;
  Alcotest.(check bool) "first answer" false ans

let test_finite_and_cofinite () =
  let s = Tupleset.of_lists [ [ 1 ]; [ 2 ] ] in
  let fin = Relation.of_tupleset ~arity:1 s in
  let cof = Relation.cofinite_of ~arity:1 s in
  Alcotest.(check bool) "finite member" true (Relation.mem fin (t [ 1 ]));
  Alcotest.(check bool) "finite non-member" false (Relation.mem fin (t [ 9 ]));
  Alcotest.(check bool) "cofinite complement" false (Relation.mem cof (t [ 1 ]));
  Alcotest.(check bool) "cofinite member" true (Relation.mem cof (t [ 9 ]))

let test_database_basics () =
  let b = Instances.multiplication () in
  check (Alcotest.array Alcotest.int) "type" [| 3 |] (Database.db_type b);
  Alcotest.(check bool) "6=2*3" true (Database.mem b 0 (t [ 2; 3; 6 ]));
  Alcotest.(check bool) "7<>2*3" false (Database.mem b 0 (t [ 2; 3; 7 ]));
  check Alcotest.int "oracle calls counted" 2 (Database.oracle_calls b);
  Database.reset_oracle_calls b;
  check Alcotest.int "reset" 0 (Database.oracle_calls b)

let test_restrict_to () =
  let b = Instances.infinite_clique () in
  let br = Database.restrict_to b [ 1; 2 ] in
  Alcotest.(check bool) "inside" true (Database.mem br 0 (t [ 1; 2 ]));
  Alcotest.(check bool) "outside" false (Database.mem br 0 (t [ 1; 3 ]))

let test_domain_of_pred () =
  let evens = Database.domain_of_pred (fun x -> x mod 2 = 0) in
  check Alcotest.int "0th even" 0 (evens.Database.dnth 0);
  check Alcotest.int "3rd even" 6 (evens.Database.dnth 3);
  Alcotest.(check bool) "mem" true (evens.Database.dmem 4);
  Alcotest.(check bool) "not mem" false (evens.Database.dmem 5)

let test_instances_sanity () =
  let b = Instances.divides () in
  Alcotest.(check bool) "3 | 9" true (Database.mem b 0 (t [ 3; 9 ]));
  Alcotest.(check bool) "3 does not divide 10" false (Database.mem b 0 (t [ 3; 10 ]));
  Alcotest.(check bool) "0 divides nothing" false (Database.mem b 0 (t [ 0; 0 ]));
  let lt = Instances.less_than () in
  Alcotest.(check bool) "1 < 2" true (Database.mem lt 0 (t [ 1; 2 ]));
  Alcotest.(check bool) "2 not< 2" false (Database.mem lt 0 (t [ 2; 2 ]))

let test_line_instance () =
  let b = Instances.successor_line () in
  (* Paper nodes shifted down by one: paper's 1–2 edge is our 0–1. *)
  Alcotest.(check bool) "centre edge" true (Database.mem b 0 (t [ 0; 1 ]));
  Alcotest.(check bool) "symmetric" true (Database.mem b 0 (t [ 1; 0 ]));
  (* paper's 3–1 edge is our 2–0 *)
  Alcotest.(check bool) "left edge" true (Database.mem b 0 (t [ 2; 0 ]));
  (* paper's 2–4 edge is our 1–3 *)
  Alcotest.(check bool) "right edge" true (Database.mem b 0 (t [ 1; 3 ]));
  Alcotest.(check bool) "no self loop" false (Database.mem b 0 (t [ 1; 1 ]));
  Alcotest.(check bool) "no skip edge" false (Database.mem b 0 (t [ 0; 3 ]));
  (* Every node has degree exactly 2 (scan a window). *)
  let degree v =
    List.length
      (List.filter
         (fun w -> Database.mem b 0 (t [ v; w ]))
         (Ints.range 0 50))
  in
  List.iter
    (fun v -> check Alcotest.int (Printf.sprintf "degree of %d" v) 2 (degree v))
    (Ints.range 0 20)

let test_grid () =
  let g = Rdb.Instances.grid () in
  (* grid_position is injective on a window. *)
  let positions = List.map Rdb.Instances.grid_position (Ints.range 0 50) in
  check Alcotest.int "injective coding" 50
    (List.length (List.sort_uniq compare positions));
  (* Every node has degree exactly 4 (scan a generous window). *)
  let degree v =
    List.length
      (List.filter (fun w -> Rdb.Database.mem g 0 (t [ v; w ])) (Ints.range 0 200))
  in
  List.iter
    (fun v -> check Alcotest.int (Printf.sprintf "degree of %d" v) 4 (degree v))
    [ 0; 1; 2; 5; 10 ];
  Alcotest.(check bool) "no self loop" false (Rdb.Database.mem g 0 (t [ 3; 3 ]))

let test_clique_and_empty () =
  let c = Instances.infinite_clique () in
  let e = Instances.empty_graph () in
  Alcotest.(check bool) "clique edge" true (Database.mem c 0 (t [ 5; 9 ]));
  Alcotest.(check bool) "clique irreflexive" false (Database.mem c 0 (t [ 5; 5 ]));
  Alcotest.(check bool) "empty has no edge" false (Database.mem e 0 (t [ 5; 9 ]))

let test_mod_cliques () =
  let b = Instances.mod_cliques 3 in
  Alcotest.(check bool) "same residue" true (Database.mem b 0 (t [ 1; 7 ]));
  Alcotest.(check bool) "different residue" false (Database.mem b 0 (t [ 1; 8 ]));
  Alcotest.(check bool) "irreflexive" false (Database.mem b 0 (t [ 4; 4 ]))

let test_triangles () =
  let b = Instances.triangles () in
  Alcotest.(check bool) "within triangle" true (Database.mem b 0 (t [ 3; 5 ]));
  Alcotest.(check bool) "across triangles" false (Database.mem b 0 (t [ 2; 3 ]))

let test_rado_extension_axiom () =
  (* 1-extension axiom: for any pair of distinct points, some fresh point
     is adjacent to the first and not the second, and vice versa. *)
  let b = Instances.rado () in
  let adj x y = Database.mem b 0 (t [ x; y ]) in
  Alcotest.(check bool) "symmetric" true (adj 1 2 = adj 2 1);
  Alcotest.(check bool) "irreflexive" false (adj 3 3);
  let witness p =
    List.exists p (Ints.range 0 2000)
  in
  Alcotest.(check bool) "adj to 0 not 1" true
    (witness (fun y -> y <> 0 && y <> 1 && adj y 0 && not (adj y 1)));
  Alcotest.(check bool) "adj to both 0 and 1" true
    (witness (fun y -> y <> 0 && y <> 1 && adj y 0 && adj y 1));
  Alcotest.(check bool) "adj to neither" true
    (witness (fun y -> y <> 0 && y <> 1 && (not (adj y 0)) && not (adj y 1)))

let test_trigonometry () =
  let b = Instances.trigonometry ~scale:1000 in
  (* sin 90° = 1 -> value 2000; sin 0° = 0 -> 1000; cos 0° = 1 -> 2000 *)
  Alcotest.(check bool) "sin 90" true (Database.mem b 0 (t [ 90; 2000 ]));
  Alcotest.(check bool) "sin 0" true (Database.mem b 0 (t [ 0; 1000 ]));
  Alcotest.(check bool) "cos 0" true (Database.mem b 1 (t [ 0; 2000 ]));
  Alcotest.(check bool) "sin 90 wrong value" false
    (Database.mem b 0 (t [ 90; 1999 ]));
  (* function: exactly one value per angle *)
  let values d =
    List.filter (fun v -> Database.mem b 0 (t [ d; v ])) (Ints.range 0 2001)
  in
  check Alcotest.int "single value per angle" 1 (List.length (values 37))

let test_paper_b1_b2 () =
  let b1 = Instances.paper_b1 () and b2 = Instances.paper_b2 () in
  Alcotest.(check bool) "(a,a) in R1" true (Database.mem b1 0 (t [ 0; 0 ]));
  Alcotest.(check bool) "(a,b) in R1" true (Database.mem b1 0 (t [ 0; 1 ]));
  Alcotest.(check bool) "(b,a) not in R1" false (Database.mem b1 0 (t [ 1; 0 ]));
  Alcotest.(check bool) "(c,c) in R2" true (Database.mem b2 0 (t [ 2; 2 ]))

let test_finite_graph () =
  let g = Instances.finite_graph [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "edge both ways" true
    (Database.mem g 0 (t [ 1; 0 ]) && Database.mem g 0 (t [ 0; 1 ]));
  Alcotest.(check bool) "absent edge" false (Database.mem g 0 (t [ 0; 2 ]))

let () =
  Alcotest.run "rdb"
    [
      ( "relation",
        [
          Alcotest.test_case "instrumentation" `Quick
            test_relation_instrumentation;
          Alcotest.test_case "arity check" `Quick test_relation_arity_check;
          Alcotest.test_case "logging" `Quick test_relation_logging;
          Alcotest.test_case "finite/cofinite" `Quick test_finite_and_cofinite;
        ] );
      ( "database",
        [
          Alcotest.test_case "basics" `Quick test_database_basics;
          Alcotest.test_case "restrict_to" `Quick test_restrict_to;
          Alcotest.test_case "domain_of_pred" `Quick test_domain_of_pred;
        ] );
      ( "instances",
        [
          Alcotest.test_case "arithmetic" `Quick test_instances_sanity;
          Alcotest.test_case "line" `Quick test_line_instance;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "clique/empty" `Quick test_clique_and_empty;
          Alcotest.test_case "mod cliques" `Quick test_mod_cliques;
          Alcotest.test_case "triangles" `Quick test_triangles;
          Alcotest.test_case "rado extension axiom" `Quick
            test_rado_extension_axiom;
          Alcotest.test_case "trigonometry" `Quick test_trigonometry;
          Alcotest.test_case "paper B1/B2" `Quick test_paper_b1_b2;
          Alcotest.test_case "finite graph" `Quick test_finite_graph;
        ] );
    ]
