open Prelude
open Localiso

let t = Tuple.of_list
let check = Alcotest.check
let qry = Alcotest.testable Rlogic.Ast.pp_query ( = )

(* -------------------------------------------------------------------- *)
(* Completeness: Theorem 2.1                                            *)

let graph_reg = lazy (Classes.make ~db_type:[| 2 |] ~rank:1 ())
let graph_reg2 = lazy (Classes.make ~db_type:[| 2 |] ~rank:2 ())

let test_formula_of_diagram () =
  let b = Rdb.Instances.paper_b1 () in
  let d = Diagram.of_pair b (t [ 0; 1 ]) in
  let vars = Core.Completeness.Diagram_vars.of_names [ "x"; "y" ] in
  let f = Core.Completeness.formula_of_diagram vars d in
  (* The formula must hold exactly on pairs with the same diagram. *)
  let holds db u v =
    Rlogic.Qf_eval.eval_formula db ~env:[ ("x", u); ("y", v) ] f
  in
  Alcotest.(check bool) "holds on (a,b)" true (holds b 0 1);
  Alcotest.(check bool) "fails on (b,a)" false (holds b 1 0);
  Alcotest.(check bool) "fails on (a,a)" false (holds b 0 0);
  Alcotest.(check bool) "quantifier free" true (Rlogic.Ast.is_quantifier_free f)

let test_query_of_lgq_eval () =
  let reg = Lazy.force graph_reg in
  (* "x has a self loop" as a class set. *)
  let lgq = Lgq.of_pred reg (fun d -> Diagram.atom d ~rel:0 [| 0; 0 |]) in
  let q = Core.Completeness.query_of_lgq lgq in
  Alcotest.(check bool) "well formed" true
    (Rlogic.Ast.well_formed ~db_type:[| 2 |] q);
  let b = Rdb.Instances.paper_b1 () in
  check (Alcotest.option Alcotest.bool) "a in Q" (Some true)
    (Rlogic.Qf_eval.mem b q (t [ 0 ]));
  check (Alcotest.option Alcotest.bool) "b not in Q" (Some false)
    (Rlogic.Qf_eval.mem b q (t [ 1 ]));
  (* Compare whole windows against the semantic query. *)
  check Test_support.tupleset_testable "window agrees"
    (Lgq.eval_upto lgq b ~cutoff:5)
    (Rlogic.Qf_eval.eval_upto b q ~cutoff:5)

let test_query_of_undefined () =
  check qry "undefined compiles to undefined" Rlogic.Ast.Undefined
    (Core.Completeness.query_of_lgq Lgq.undefined)

let test_lgq_of_query () =
  let reg = Lazy.force graph_reg2 in
  let q = Rlogic.Parser.query "{(x, y) | R1(x, y) && !R1(y, x)}" in
  let lgq = Core.Completeness.lgq_of_query reg q in
  let b = Rdb.Instances.less_than () in
  (* On less_than every ordered pair (x,y), x<y qualifies. *)
  check (Alcotest.option Alcotest.bool) "(1,2)" (Some true)
    (Lgq.mem lgq b (t [ 1; 2 ]));
  check (Alcotest.option Alcotest.bool) "(2,1)" (Some false)
    (Lgq.mem lgq b (t [ 2; 1 ]));
  check (Alcotest.option Alcotest.bool) "(1,1)" (Some false)
    (Lgq.mem lgq b (t [ 1; 1 ]))

let test_normalize_idempotent () =
  let reg = Lazy.force graph_reg2 in
  let q = Rlogic.Parser.query "{(x, y) | R1(x, y) || x = y}" in
  let n1 = Core.Completeness.normalize reg q in
  let n2 = Core.Completeness.normalize reg n1 in
  check qry "normalize idempotent" n1 n2;
  Alcotest.(check bool) "normal form equivalent to original" true
    (Core.Completeness.equivalent reg q n1)

let test_equivalence_decision () =
  let reg = Lazy.force graph_reg2 in
  let eq a b =
    Core.Completeness.equivalent reg (Rlogic.Parser.query a)
      (Rlogic.Parser.query b)
  in
  Alcotest.(check bool) "De Morgan" true
    (eq "{(x, y) | !(R1(x, y) || x = y)}" "{(x, y) | !R1(x, y) && x != y}");
  Alcotest.(check bool) "contrapositive" true
    (eq "{(x, y) | R1(x, y) -> x = y}" "{(x, y) | !(x = y) -> !R1(x, y)}");
  Alcotest.(check bool) "distinct queries differ" false
    (eq "{(x, y) | R1(x, y)}" "{(x, y) | R1(y, x)}");
  Alcotest.(check bool) "undefined equivalent to itself" true
    (Core.Completeness.equivalent reg Rlogic.Ast.Undefined Rlogic.Ast.Undefined);
  Alcotest.(check bool) "undefined differs from empty" false
    (Core.Completeness.equivalent reg Rlogic.Ast.Undefined
       (Rlogic.Parser.query "{(x, y) | false}"))

let test_roundtrip_explicit () =
  let reg = Lazy.force graph_reg in
  List.iter
    (fun indices ->
      let lgq = Lgq.of_indices reg indices in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s"
           (String.concat "," (List.map string_of_int indices)))
        true
        (Core.Completeness.roundtrip_holds reg lgq))
    [ []; [ 0 ]; [ 1 ]; [ 0; 1 ] ];
  Alcotest.(check bool) "roundtrip undefined" true
    (Core.Completeness.roundtrip_holds reg Lgq.undefined)

(* -------------------------------------------------------------------- *)
(* Rquery                                                               *)

let test_rquery_of_lgq () =
  let reg = Lazy.force graph_reg in
  let lgq = Lgq.of_pred reg (fun d -> Diagram.atom d ~rel:0 [| 0; 0 |]) in
  let q = Core.Rquery.of_lgq lgq in
  let b = Rdb.Instances.paper_b1 () in
  Alcotest.(check bool) "member" true
    (Core.Rquery.run q b (t [ 0 ]) = Core.Rquery.Member);
  Alcotest.(check bool) "nonmember" true
    (Core.Rquery.run q b (t [ 1 ]) = Core.Rquery.Nonmember);
  Alcotest.(check bool) "wrong rank" true
    (Core.Rquery.run q b (t [ 1; 2 ]) = Core.Rquery.Nonmember);
  Alcotest.(check bool) "undefined diverges" true
    (Core.Rquery.run Core.Rquery.Undefined_query b (t [ 0 ])
    = Core.Rquery.Diverges)

let test_rquery_classify_roundtrip () =
  let reg = Lazy.force graph_reg2 in
  let lgq =
    Lgq.of_pred reg (fun d ->
        Diagram.blocks d = 2 && Diagram.atom d ~rel:0 [| 0; 1 |])
  in
  let q = Core.Rquery.of_lgq lgq in
  Alcotest.(check bool) "classify inverts of_lgq" true
    (Lgq.equal lgq (Core.Rquery.classify reg q))

let test_locally_generic_detector () =
  (* The §2 example: Q = {x | ∃y (x≠y ∧ (x,y) ∈ R)} is generic but not
     locally generic; witnessed on (B1,(a)) vs (B2,(c)). *)
  let decide b u =
    List.exists
      (fun y -> y <> u.(0) && Rdb.Database.mem b 0 (t [ u.(0); y ]))
      (Ints.range 0 20)
  in
  let q = Core.Rquery.make ~db_type:[| 2 |] ~rank:1 decide in
  let b1 = Rdb.Instances.paper_b1 () and b2 = Rdb.Instances.paper_b2 () in
  let samples = [ (b1, t [ 0 ]); (b2, t [ 2 ]) ] in
  match Core.Rquery.locally_generic_on q samples with
  | Some (u, v) ->
      check Test_support.tuple_testable "witness u" (t [ 0 ]) u;
      check Test_support.tuple_testable "witness v" (t [ 2 ]) v
  | None -> Alcotest.fail "expected a local-genericity violation"

(* -------------------------------------------------------------------- *)
(* Genericity: the Proposition 2.5 construction                         *)

let exists_query b u =
  List.exists
    (fun y -> y <> u.(0) && Rdb.Database.mem b 0 (t [ u.(0); y ]))
    (Ints.range 0 20)

let test_refute_builds_certificate () =
  let b1 = Rdb.Instances.paper_b1 () and b2 = Rdb.Instances.paper_b2 () in
  match
    Core.Genericity.refute ~decide:exists_query ~b1 ~u:(t [ 0 ]) ~b2
      ~v:(t [ 2 ])
  with
  | None -> Alcotest.fail "expected a certificate"
  | Some cert ->
      Alcotest.(check bool) "answers differ" true
        (cert.Core.Genericity.answer3 <> cert.Core.Genericity.answer4);
      Alcotest.(check bool) "certificate verifies" true
        (Core.Genericity.verify cert)

let test_refute_rejects_generic_situations () =
  let b1 = Rdb.Instances.paper_b1 () and b2 = Rdb.Instances.paper_b2 () in
  (* Not locally isomorphic: (a,b) vs (c,c). *)
  Alcotest.(check bool) "not locally isomorphic" true
    (Core.Genericity.refute ~decide:exists_query ~b1 ~u:(t [ 0; 1 ]) ~b2
       ~v:(t [ 2; 2 ])
    = None);
  (* Locally isomorphic but a locally generic query: self loop test. *)
  let loop b u = Rdb.Database.mem b 0 (t [ u.(0); u.(0) ]) in
  Alcotest.(check bool) "locally generic query yields no certificate" true
    (Core.Genericity.refute ~decide:loop ~b1 ~u:(t [ 0 ]) ~b2 ~v:(t [ 2 ])
    = None)

(* -------------------------------------------------------------------- *)
(* L⁻ₙ: Propositions 2.6 / 2.7                                          *)

let test_lminus_n_eval () =
  let reg = Lazy.force graph_reg in
  let q = Rlogic.Parser.query "{(x) | R1(x, x)}" in
  let ln = Core.Lminus_n.of_query ~n:3 reg q in
  check Alcotest.int "window" 3 (Core.Lminus_n.window ln);
  (* Divides: x | x for x > 0; output windowed to {0,1,2}. *)
  check Test_support.tupleset_testable "self-loops in the window"
    (Tupleset.of_lists [ [ 1 ]; [ 2 ] ])
    (Core.Lminus_n.eval ln (Rdb.Instances.divides ()))

let test_lminus_n_not_generic () =
  (* The paper's remark: shift the database and a non-empty L⁻ₙ answer
     changes — L⁻ₙ queries are not generic. *)
  let reg = Lazy.force graph_reg in
  let q = Rlogic.Parser.query "{(x) | R1(x, x)}" in
  let ln = Core.Lminus_n.of_query ~n:3 reg q in
  (match
     Core.Lminus_n.non_generic_witness ln (Rdb.Instances.divides ()) ~shift:5
   with
  | Some (before, after) ->
      Alcotest.(check bool) "answers differ" true
        (not (Tupleset.equal before after));
      Alcotest.(check bool) "shifted answer empty" true
        (Tupleset.is_empty after)
  | None -> Alcotest.fail "expected a non-genericity witness");
  (* An empty answer is trivially shift-invariant. *)
  let empty_q = Rlogic.Parser.query "{(x) | false}" in
  let ln0 = Core.Lminus_n.of_query ~n:3 reg empty_q in
  Alcotest.(check bool) "empty query has no witness" true
    (Core.Lminus_n.non_generic_witness ln0 (Rdb.Instances.divides ())
       ~shift:5
    = None)

let test_lminus_n_completeness () =
  (* Proposition 2.7 round trip: capture a window-generic decision
     procedure, synthesize the formula, and compare evaluations. *)
  let reg = Lazy.force graph_reg2 in
  let decide b u = Rdb.Database.mem b 0 u && u.(0) <> u.(1) in
  let ln = Core.Lminus_n.classify ~n:4 ~rank:2 reg decide in
  let q = Core.Lminus_n.to_query ln in
  Alcotest.(check bool) "synthesized formula is quantifier free" true
    (match q with
    | Rlogic.Ast.Query { body; _ } -> Rlogic.Ast.is_quantifier_free body
    | Rlogic.Ast.Undefined -> false);
  List.iter
    (fun db ->
      let direct =
        Combinat.fold_cartesian
          (fun acc u ->
            if decide db (Array.copy u) then Tupleset.add (Array.copy u) acc
            else acc)
          Tupleset.empty ~width:2 ~bound:4
      in
      check Test_support.tupleset_testable
        (Rdb.Database.name db)
        direct
        (Core.Lminus_n.eval ln db))
    [
      Rdb.Instances.less_than ();
      Rdb.Instances.triangles ();
      Rdb.Instances.infinite_clique ();
    ]

let test_lminus_n_validation () =
  Alcotest.check_raises "undefined rejected"
    (Invalid_argument "Lminus_n.of_lgq: undefined query") (fun () ->
      ignore (Core.Lminus_n.of_lgq ~n:3 Localiso.Lgq.undefined))

(* -------------------------------------------------------------------- *)
(* Properties                                                           *)

let qcheck_tests =
  let open QCheck2 in
  let reg = Lazy.force graph_reg2 in
  let size = Classes.size reg in
  let selection_gen =
    Gen.(list_size (int_bound 6) (int_bound (size - 1)))
  in
  let pair2 = Test_support.pair_gen ~db_type:[| 2 |] ~rank:2 () in
  Test_support.to_alcotest
    [
      Test.make ~count:60 ~name:"completeness roundtrip on random class sets"
        selection_gen
        (fun indices ->
          Core.Completeness.roundtrip_holds reg (Lgq.of_indices reg indices));
      Test.make ~count:60
        ~name:"synthesized formula evaluates its class set pointwise"
        Gen.(pair selection_gen pair2)
        (fun (indices, (b, u)) ->
          let lgq = Lgq.of_indices reg indices in
          let q = Core.Completeness.query_of_lgq lgq in
          Rlogic.Qf_eval.mem b q u = Lgq.mem lgq b u);
      Test.make ~count:60 ~name:"normalize is semantics preserving"
        Gen.(pair selection_gen pair2)
        (fun (indices, (b, u)) ->
          let q = Core.Completeness.query_of_lgq (Lgq.of_indices reg indices) in
          let n = Core.Completeness.normalize reg q in
          Rlogic.Qf_eval.mem b q u = Rlogic.Qf_eval.mem b n u);
    ]

let () =
  Alcotest.run "core"
    [
      ( "completeness",
        [
          Alcotest.test_case "formula of diagram" `Quick test_formula_of_diagram;
          Alcotest.test_case "query of lgq evaluates" `Quick
            test_query_of_lgq_eval;
          Alcotest.test_case "undefined query" `Quick test_query_of_undefined;
          Alcotest.test_case "lgq of query" `Quick test_lgq_of_query;
          Alcotest.test_case "normalize idempotent" `Quick
            test_normalize_idempotent;
          Alcotest.test_case "equivalence decision" `Quick
            test_equivalence_decision;
          Alcotest.test_case "explicit roundtrips" `Quick
            test_roundtrip_explicit;
        ] );
      ( "rquery",
        [
          Alcotest.test_case "of_lgq" `Quick test_rquery_of_lgq;
          Alcotest.test_case "classify roundtrip" `Quick
            test_rquery_classify_roundtrip;
          Alcotest.test_case "local genericity detector" `Quick
            test_locally_generic_detector;
        ] );
      ( "lminus_n",
        [
          Alcotest.test_case "eval" `Quick test_lminus_n_eval;
          Alcotest.test_case "not generic (shift)" `Quick
            test_lminus_n_not_generic;
          Alcotest.test_case "completeness round trip" `Quick
            test_lminus_n_completeness;
          Alcotest.test_case "validation" `Quick test_lminus_n_validation;
        ] );
      ( "genericity",
        [
          Alcotest.test_case "refute builds certificate" `Quick
            test_refute_builds_certificate;
          Alcotest.test_case "refute rejects" `Quick
            test_refute_rejects_generic_situations;
        ] );
      ("properties", qcheck_tests);
    ]
