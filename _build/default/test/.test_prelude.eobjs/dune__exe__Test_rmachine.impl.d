test/test_rmachine.ml: Alcotest Array Core Counter List Localiso Nonclosure Oracle_rm Prelude Printf Rdb Rmachine Toy
