test/test_core.ml: Alcotest Array Classes Combinat Core Diagram Gen Ints Lazy Lgq List Localiso Prelude Printf QCheck2 Rdb Rlogic String Test Test_support Tuple Tupleset
