test/test_prelude.ml: Alcotest Array Combinat Gen Ints List Prelude Printf QCheck2 Test Test_support Tuple Tupleset
