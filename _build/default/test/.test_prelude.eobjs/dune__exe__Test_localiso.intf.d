test/test_localiso.mli:
