test/test_ql.ml: Alcotest Array Coding Combinat Hs List Prelude Printf QCheck2 Ql Ql_ast Ql_finite Ql_hs Ql_interp Ql_macros Ql_parser Rdb Rlogic String Test_support Tuple Tupleset
