test/test_localiso.ml: Alcotest Array Classes Diagram Gen Lgq Liso List Localiso Prelude Printf QCheck2 Rdb String Test Test_support Tuple Tupleset
