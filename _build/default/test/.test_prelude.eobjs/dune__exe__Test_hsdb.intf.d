test/test_hsdb.mli:
