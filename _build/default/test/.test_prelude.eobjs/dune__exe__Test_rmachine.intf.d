test/test_rmachine.mli:
