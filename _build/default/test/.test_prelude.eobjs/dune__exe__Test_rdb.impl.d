test/test_rdb.ml: Alcotest Array Database Instances Ints List Prelude Printf Rdb Relation Test_support Tuple Tupleset
