test/test_edge.ml: Alcotest Array Combinat Core Fcf Fincof Gen Genmach Hs Ints List Localiso Prelude QCheck2 QCheck_alcotest Ql Rdb Rlogic Rmachine String Test Tuple Tupleset
