test/test_bp.mli:
