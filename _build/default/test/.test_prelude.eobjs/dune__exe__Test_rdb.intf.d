test/test_rdb.mli:
