test/test_hsdb.ml: Alcotest Array Combinat Gen Hs Ints List Localiso Prelude Printf QCheck2 QCheck_alcotest Rdb Rlogic String Test Test_support Tuple Tupleset
