test/test_gm.ml: Alcotest Array Genmach Hs List Prelude Printf Ql Rdb String Test_support Tupleset
