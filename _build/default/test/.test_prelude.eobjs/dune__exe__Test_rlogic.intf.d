test/test_rlogic.mli:
