test/test_bp.ml: Alcotest Array Bptheory Combinat Hs List Prelude Rdb Rlogic Tuple
