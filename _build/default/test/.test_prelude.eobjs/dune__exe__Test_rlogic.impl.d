test/test_rlogic.ml: Alcotest Ast List Parser Prelude QCheck2 Qf_eval Rdb Rlogic Test Test_support Tuple Tupleset
