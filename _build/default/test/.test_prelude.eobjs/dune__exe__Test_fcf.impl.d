test/test_fcf.ml: Alcotest Array Combinat Fcf Fcfdb Fincof Gen Hs Ints List Prelude Printf QCheck2 Ql Qlf String Test Test_support Tuple Tupleset
