test/test_gm.mli:
