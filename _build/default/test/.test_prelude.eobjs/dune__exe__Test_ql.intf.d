test/test_ql.mli:
