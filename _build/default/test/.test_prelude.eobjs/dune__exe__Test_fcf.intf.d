test/test_fcf.mli:
