open Prelude
open Fincof

let t = Tuple.of_list
let check = Alcotest.check
let fcf_testable = Alcotest.testable Fcf.pp Fcf.equal

let fin rank lists = Fcf.finite ~rank (Tupleset.of_lists lists)
let cof rank lists = Fcf.cofinite ~rank (Tupleset.of_lists lists)

(* -------------------------------------------------------------------- *)
(* The fcf relation algebra                                             *)

let test_mem () =
  let f = fin 1 [ [ 0 ]; [ 2 ] ] in
  let c = cof 1 [ [ 0 ]; [ 2 ] ] in
  Alcotest.(check bool) "finite member" true (Fcf.mem f (t [ 0 ]));
  Alcotest.(check bool) "finite non-member" false (Fcf.mem f (t [ 1 ]));
  Alcotest.(check bool) "cofinite member" true (Fcf.mem c (t [ 1 ]));
  Alcotest.(check bool) "cofinite excluded" false (Fcf.mem c (t [ 2 ]))

let test_complement_involution () =
  let f = fin 2 [ [ 0; 1 ] ] in
  check fcf_testable "double complement" f (Fcf.complement (Fcf.complement f));
  Alcotest.(check bool) "indicator flipped" true
    (not (Fcf.is_finite_rel (Fcf.complement f)))

let test_rank0_normalization () =
  (* D⁰ = {()}: co-finite values of rank 0 normalize to finite ones. *)
  let full0 = Fcf.cofinite ~rank:0 Tupleset.empty in
  Alcotest.(check bool) "full rank-0 is finite" true (Fcf.is_finite_rel full0);
  Alcotest.(check bool) "and a singleton" true (Fcf.is_single full0);
  let empty0 = Fcf.cofinite ~rank:0 (Tupleset.singleton [||]) in
  Alcotest.(check bool) "empty rank-0" true (Fcf.is_empty empty0)

let test_inter_cases () =
  let f = fin 1 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let c = cof 1 [ [ 1 ]; [ 5 ] ] in
  check fcf_testable "finite ∩ cofinite = e − ¬f"
    (fin 1 [ [ 0 ]; [ 2 ] ])
    (Fcf.inter f c);
  check fcf_testable "cofinite ∩ cofinite"
    (cof 1 [ [ 1 ]; [ 5 ]; [ 9 ] ])
    (Fcf.inter c (cof 1 [ [ 9 ] ]));
  check fcf_testable "union of cofinites is cofinite"
    (cof 1 [ [ 1 ] ])
    (Fcf.union c (cof 1 [ [ 1 ]; [ 3 ] ]))

let test_prop_42_projection () =
  (* Proposition 4.2: R↓ = D^{n-1} for co-finite R. *)
  let c2 = cof 2 [ [ 0; 1 ]; [ 2; 2 ] ] in
  check fcf_testable "projection of cofinite rank 2 is full D^1"
    (Fcf.full ~rank:1) (Fcf.drop_first c2);
  let c1 = cof 1 [ [ 4 ] ] in
  let projected = Fcf.drop_first c1 in
  Alcotest.(check bool) "projection of cofinite rank 1 is finite" true
    (Fcf.is_finite_rel projected);
  Alcotest.(check bool) "namely {()}" true (Fcf.is_single projected);
  (* Finite projection is the image. *)
  check fcf_testable "finite projection"
    (fin 1 [ [ 1 ]; [ 2 ] ])
    (Fcf.drop_first (fin 2 [ [ 0; 1 ]; [ 5; 2 ] ]))

let test_swap_and_product () =
  check fcf_testable "swap finite"
    (fin 2 [ [ 1; 0 ] ])
    (Fcf.swap_last (fin 2 [ [ 0; 1 ] ]));
  check fcf_testable "swap cofinite complement"
    (cof 2 [ [ 1; 0 ] ])
    (Fcf.swap_last (cof 2 [ [ 0; 1 ] ]));
  check fcf_testable "product with Df"
    (fin 2 [ [ 7; 0 ]; [ 7; 1 ] ])
    (Fcf.product_df (fin 1 [ [ 7 ] ]) ~df:[ 0; 1 ]);
  Alcotest.(check bool) "product of cofinite rejected" true
    (match Fcf.product_df (cof 1 []) ~df:[ 0 ] with
    | exception Ql.Ql_interp.Rank_error _ -> true
    | _ -> false)

let test_constants () =
  check (Alcotest.list Alcotest.int) "constants of finite" [ 0; 1; 5 ]
    (Fcf.constants (fin 2 [ [ 0; 1 ]; [ 5; 0 ] ]));
  check (Alcotest.list Alcotest.int) "constants of cofinite" [ 3 ]
    (Fcf.constants (cof 1 [ [ 3 ] ]))

(* Windowed semantic cross-check of the algebra. *)
let qcheck_algebra =
  let open QCheck2 in
  let gen_fcf =
    Gen.(
      pair bool (list_size (int_bound 4) (int_bound 4)) >|= fun (fin_p, xs) ->
      let s =
        List.fold_left
          (fun acc x -> Tupleset.add [| x |] acc)
          Tupleset.empty xs
      in
      if fin_p then Fcf.finite ~rank:1 s else Fcf.cofinite ~rank:1 s)
  in
  let window = Ints.range 0 8 in
  let agree op sem a b =
    List.for_all
      (fun x -> Fcf.mem (op a b) (t [ x ]) = sem (Fcf.mem a (t [ x ])) (Fcf.mem b (t [ x ])))
      window
  in
  Test_support.to_alcotest
    [
      Test.make ~count:200 ~name:"inter pointwise" Gen.(pair gen_fcf gen_fcf)
        (fun (a, b) -> agree Fcf.inter ( && ) a b);
      Test.make ~count:200 ~name:"union pointwise" Gen.(pair gen_fcf gen_fcf)
        (fun (a, b) -> agree Fcf.union ( || ) a b);
      Test.make ~count:200 ~name:"complement pointwise" gen_fcf (fun a ->
          List.for_all
            (fun x -> Fcf.mem (Fcf.complement a) (t [ x ]) = not (Fcf.mem a (t [ x ])))
            window);
      Test.make ~count:200 ~name:"closure under ops" Gen.(pair gen_fcf gen_fcf)
        (fun (a, b) ->
          (* fcf relations are closed under ∩, ∪, ¬ — each result is
             still representable, which the constructors guarantee. *)
          ignore (Fcf.inter a b);
          ignore (Fcf.union a b);
          ignore (Fcf.complement a);
          true);
    ]

(* Rank-2 windowed semantic cross-check, including drop_first and
   swap_last. *)
let qcheck_algebra_rank2 =
  let open QCheck2 in
  let gen_fcf2 =
    Gen.(
      pair bool (list_size (int_bound 4) (pair (int_bound 3) (int_bound 3)))
      >|= fun (fin_p, pairs) ->
      let s =
        List.fold_left
          (fun acc (x, y) -> Tupleset.add [| x; y |] acc)
          Tupleset.empty pairs
      in
      if fin_p then Fcf.finite ~rank:2 s else Fcf.cofinite ~rank:2 s)
  in
  let window = Ints.range 0 7 in
  Test_support.to_alcotest
    [
      Test.make ~count:200 ~name:"rank-2 inter/union pointwise"
        Gen.(pair gen_fcf2 gen_fcf2)
        (fun (a, b) ->
          List.for_all
            (fun x ->
              List.for_all
                (fun y ->
                  Fcf.mem (Fcf.inter a b) (t [ x; y ])
                  = (Fcf.mem a (t [ x; y ]) && Fcf.mem b (t [ x; y ]))
                  && Fcf.mem (Fcf.union a b) (t [ x; y ])
                     = (Fcf.mem a (t [ x; y ]) || Fcf.mem b (t [ x; y ])))
                window)
            window);
      Test.make ~count:200 ~name:"swap_last is a semantic transpose" gen_fcf2
        (fun a ->
          List.for_all
            (fun x ->
              List.for_all
                (fun y ->
                  Fcf.mem (Fcf.swap_last a) (t [ x; y ]) = Fcf.mem a (t [ y; x ]))
                window)
            window);
      Test.make ~count:200
        ~name:"drop_first is sound (and complete for finite)" gen_fcf2
        (fun a ->
          let projected = Fcf.drop_first a in
          List.for_all
            (fun y ->
              (* soundness: a member column implies a witness for finite
                 relations; for co-finite ones Prop 4.2 gives totality. *)
              match a with
              | Fcf.Finite _ ->
                  Fcf.mem projected (t [ y ])
                  = List.exists (fun x -> Fcf.mem a (t [ x; y ])) window
              | Fcf.Cofinite _ -> Fcf.mem projected (t [ y ]))
            window);
    ]

(* -------------------------------------------------------------------- *)
(* Fcfdb                                                                *)

let sample_db () =
  Fcfdb.make
    [ fin 1 [ [ 0 ]; [ 1 ] ]; cof 2 [ [ 2; 2 ] ] ]

let test_df () =
  check (Alcotest.list Alcotest.int) "df" [ 0; 1; 2 ] (Fcfdb.df (sample_db ()))

let test_automorphisms () =
  (* Permutations of {0,1,2} preserving R1 = {0,1} and the excluded pair
     (2,2): identity and the swap of 0,1. *)
  check Alcotest.int "two automorphisms" 2
    (List.length (Fcfdb.automorphisms (sample_db ())))

let test_equiv () =
  let db = sample_db () in
  Alcotest.(check bool) "0 ~ 1" true (Fcfdb.equiv db (t [ 0 ]) (t [ 1 ]));
  Alcotest.(check bool) "0 !~ 2" false (Fcfdb.equiv db (t [ 0 ]) (t [ 2 ]));
  Alcotest.(check bool) "outside elements interchangeable" true
    (Fcfdb.equiv db (t [ 5 ]) (t [ 9 ]));
  Alcotest.(check bool) "df vs outside" false
    (Fcfdb.equiv db (t [ 0 ]) (t [ 9 ]));
  Alcotest.(check bool) "pairs with pattern" true
    (Fcfdb.equiv db (t [ 0; 7 ]) (t [ 1; 4 ]));
  Alcotest.(check bool) "pattern mismatch" false
    (Fcfdb.equiv db (t [ 0; 0 ]) (t [ 0; 1 ]))

let test_to_hsdb_valid () =
  let hs = Fcfdb.to_hsdb (sample_db ()) in
  match Hs.Hsdb.validate ~max_rank:2 ~window:6 hs with
  | [] -> ()
  | issues -> Alcotest.fail (String.concat "\n" issues)

let test_to_hsdb_matches_unary_instance () =
  let via_fcf =
    Fcfdb.to_hsdb (Fcfdb.make [ fin 1 [ [ 0 ]; [ 1 ]; [ 2 ] ] ])
  in
  let direct = Hs.Hsinstances.unary_finite_set ~members:[ 0; 1; 2 ] in
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "class count rank %d" n)
        (Hs.Hsdb.class_count direct n)
        (Hs.Hsdb.class_count via_fcf n))
    [ 1; 2; 3 ]

let test_df_from_tree () =
  (* Proposition 4.1, second direction. *)
  let db = sample_db () in
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "recovered Df" (Some [ 0; 1; 2 ])
    (Fcfdb.df_from_tree (Fcfdb.to_hsdb db));
  let empty_df = Fcfdb.make [ fin 2 [] ] in
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "empty Df" (Some [])
    (Fcfdb.df_from_tree (Fcfdb.to_hsdb empty_df))

(* -------------------------------------------------------------------- *)
(* QL_f+                                                                *)

let test_qlf_e_term () =
  let db = sample_db () in
  check fcf_testable "E over Df"
    (fin 2 [ [ 0; 0 ]; [ 1; 1 ]; [ 2; 2 ] ])
    (Qlf.eval_term db Ql.Ql_ast.E)

let test_qlf_terms () =
  let db = sample_db () in
  check fcf_testable "Rel1" (fin 1 [ [ 0 ]; [ 1 ] ])
    (Qlf.eval_term db (Ql.Ql_ast.Rel 0));
  check fcf_testable "complement is cofinite" (cof 1 [ [ 0 ]; [ 1 ] ])
    (Qlf.eval_term db (Ql.Ql_ast.Comp (Ql.Ql_ast.Rel 0)));
  check fcf_testable "projection of cofinite (Prop 4.2)" (Fcf.full ~rank:1)
    (Qlf.eval_term db (Ql.Ql_ast.Down (Ql.Ql_ast.Rel 1)));
  check fcf_testable "up = product with Df"
    (fin 2
       [ [ 0; 0 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 0 ]; [ 1; 1 ]; [ 1; 2 ] ])
    (Qlf.eval_term db (Ql.Ql_ast.Up (Ql.Ql_ast.Rel 0)))

let test_qlf_while_finite () =
  let db = sample_db () in
  (* Complement Y1 while it is finite: one iteration, ends co-finite. *)
  let p =
    Ql.Ql_macros.seq
      [
        Ql.Ql_ast.Assign (0, Ql.Ql_ast.Rel 0);
        Ql.Ql_ast.While_finite (0, Ql.Ql_ast.Assign (0, Ql.Ql_ast.Comp (Ql.Ql_ast.Var 0)));
      ]
  in
  match Qlf.output (Qlf.run db ~fuel:100 p) with
  | Some (finite_part, is_cofinite) ->
      Alcotest.(check bool) "cofinite answer" true is_cofinite;
      check Test_support.tupleset_testable "finite part is the complement"
        (Tupleset.of_lists [ [ 0 ]; [ 1 ] ])
        finite_part
  | None -> Alcotest.fail "expected halt"

let test_qlf_vs_qlhs () =
  (* Corollary 4.1 flavour: a QL program runs on the fcf representation
     and on the hs representation with the same denotation. *)
  let db = sample_db () in
  let hs = Fcfdb.to_hsdb db in
  let terms =
    [
      Ql.Ql_ast.Rel 0;
      Ql.Ql_ast.Comp (Ql.Ql_ast.Rel 0);
      Ql.Ql_ast.Rel 1;
      Ql.Ql_macros.union (Ql.Ql_ast.Up (Ql.Ql_ast.Rel 0)) (Ql.Ql_ast.Rel 1);
      Ql.Ql_ast.Swap (Ql.Ql_ast.Rel 1);
    ]
  in
  List.iter
    (fun term ->
      let fcf_value = Qlf.eval_term db term in
      let hs_value = Ql.Ql_hs.eval_term hs term in
      let cutoff = 5 in
      let fcf_window =
        Combinat.fold_cartesian
          (fun acc u ->
            if Fcf.mem fcf_value (Array.copy u) then
              Tupleset.add (Array.copy u) acc
            else acc)
          Tupleset.empty
          ~width:(Fcf.rank fcf_value)
          ~bound:cutoff
      in
      check Test_support.tupleset_testable
        (Ql.Ql_ast.term_to_string term)
        fcf_window
        (Ql.Ql_hs.denotation hs hs_value ~cutoff))
    terms

let test_qlf_timeout () =
  let db = sample_db () in
  let p = Ql.Ql_ast.While_empty (1, Ql.Ql_ast.Assign (0, Ql.Ql_ast.Rel 0)) in
  Alcotest.(check bool) "diverges" true (Qlf.run db ~fuel:20 p = Ql.Ql_interp.Timeout)

let () =
  Alcotest.run "fcf"
    [
      ( "algebra",
        [
          Alcotest.test_case "mem" `Quick test_mem;
          Alcotest.test_case "complement involution" `Quick
            test_complement_involution;
          Alcotest.test_case "rank-0 normalization" `Quick
            test_rank0_normalization;
          Alcotest.test_case "intersection cases" `Quick test_inter_cases;
          Alcotest.test_case "Prop 4.2 projection" `Quick
            test_prop_42_projection;
          Alcotest.test_case "swap and product" `Quick test_swap_and_product;
          Alcotest.test_case "constants" `Quick test_constants;
        ] );
      ("algebra-properties", qcheck_algebra);
      ("algebra-properties-rank2", qcheck_algebra_rank2);
      ( "fcfdb",
        [
          Alcotest.test_case "df" `Quick test_df;
          Alcotest.test_case "automorphisms" `Quick test_automorphisms;
          Alcotest.test_case "equiv" `Quick test_equiv;
          Alcotest.test_case "to_hsdb valid" `Quick test_to_hsdb_valid;
          Alcotest.test_case "to_hsdb matches unary instance" `Quick
            test_to_hsdb_matches_unary_instance;
          Alcotest.test_case "df from tree (Prop 4.1)" `Quick
            test_df_from_tree;
        ] );
      ( "qlf",
        [
          Alcotest.test_case "E term" `Quick test_qlf_e_term;
          Alcotest.test_case "terms" `Quick test_qlf_terms;
          Alcotest.test_case "while |Y|<inf" `Quick test_qlf_while_finite;
          Alcotest.test_case "agrees with QL_hs" `Quick test_qlf_vs_qlhs;
          Alcotest.test_case "timeout" `Quick test_qlf_timeout;
        ] );
    ]
