open Rmachine

let check = Alcotest.check
let t = Prelude.Tuple.of_list

(* -------------------------------------------------------------------- *)
(* Counter machines                                                     *)

let test_addition () =
  match Counter.run Counter.addition ~input:[ 3; 4 ] ~fuel:1000 with
  | Counter.Halted counters -> check Alcotest.int "3+4" 7 counters.(0)
  | Counter.Out_of_fuel -> Alcotest.fail "addition diverged"

let test_addition_zero () =
  match Counter.run Counter.addition ~input:[ 5; 0 ] ~fuel:1000 with
  | Counter.Halted counters -> check Alcotest.int "5+0" 5 counters.(0)
  | Counter.Out_of_fuel -> Alcotest.fail "addition diverged"

let test_busy_loop () =
  Alcotest.(check bool) "never halts" true
    (Counter.run Counter.busy_loop ~input:[] ~fuel:10_000 = Counter.Out_of_fuel)

let test_halt_after () =
  let m = Counter.halt_after 10 in
  Alcotest.(check bool) "halts within 100" true
    (Counter.halts_within m ~input:[] ~steps:100);
  Alcotest.(check bool) "not within 5" false
    (Counter.halts_within m ~input:[] ~steps:5)

let test_validation () =
  Alcotest.check_raises "bad counter"
    (Invalid_argument "Counter.make: counter index out of range") (fun () ->
      ignore (Counter.make ~ncounters:1 [ Counter.Incr 5 ]))

(* -------------------------------------------------------------------- *)
(* Gödel numbering                                                      *)

let behaviour_equal m1 m2 =
  List.for_all
    (fun z ->
      let outcome m =
        match Counter.run m ~input:[ z ] ~fuel:200 with
        | Counter.Halted c -> Some (Array.to_list c)
        | Counter.Out_of_fuel -> None
      in
      outcome m1 = outcome m2)
    [ 0; 1; 2; 5; 10 ]

let test_encode_decode_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "same behaviour" true
        (behaviour_equal m (Toy.decode (Toy.encode m))))
    [
      Counter.addition;
      Counter.busy_loop;
      Counter.make ~ncounters:2
        [ Counter.Incr 1; Counter.Jz (0, 4); Counter.Decr 0; Counter.Jmp 1 ];
    ]

let test_decode_total () =
  (* Every natural decodes to some machine, and the step-bounded run is
     total. *)
  List.iter
    (fun n ->
      let m = Toy.decode n in
      ignore (Counter.run m ~input:[ 3 ] ~fuel:100))
    (Prelude.Ints.range 0 200)

let test_halting_codes () =
  Alcotest.(check bool) "loop never halts" false
    (Toy.halts_within ~x:5000 ~y:Toy.loop_code ~z:0);
  Alcotest.(check bool) "immediate halts fast" true
    (Toy.halts_within ~x:3 ~y:Toy.immediate_halt_code ~z:0);
  let slow = Toy.slow_input_code in
  Alcotest.(check bool) "slow not within z" false
    (Toy.halts_within ~x:50 ~y:slow ~z:50);
  Alcotest.(check bool) "slow within 4z" true
    (Toy.halts_within ~x:200 ~y:slow ~z:50)

let test_halting_relation_db () =
  let db = Toy.halting_relation () in
  check (Alcotest.array Alcotest.int) "type (3)" [| 3 |]
    (Rdb.Database.db_type db);
  Alcotest.(check bool) "member" true
    (Rdb.Database.mem db 0 (t [ 3; Toy.immediate_halt_code; 9 ]));
  Alcotest.(check bool) "non-member" false
    (Rdb.Database.mem db 0 (t [ 1000; Toy.loop_code; 0 ]))

(* -------------------------------------------------------------------- *)
(* Oracle register machines                                             *)

let test_member_of () =
  let db = Rdb.Instances.divides () in
  let m = Oracle_rm.member_of ~rel:0 ~arity:2 in
  Alcotest.(check bool) "3 | 9" true
    (Oracle_rm.decider m ~fuel:100 db (t [ 3; 9 ]));
  Alcotest.(check bool) "3 does not divide 10" false
    (Oracle_rm.decider m ~fuel:100 db (t [ 3; 10 ]))

let test_oracle_calls_counted () =
  let db = Rdb.Instances.divides () in
  Rdb.Database.reset_oracle_calls db;
  ignore
    (Oracle_rm.decider (Oracle_rm.member_of ~rel:0 ~arity:2) ~fuel:100 db
       (t [ 2; 8 ]));
  check Alcotest.int "exactly one oracle question" 1
    (Rdb.Database.oracle_calls db)

let test_exists_forward_edge () =
  let machine = Oracle_rm.exists_forward_edge in
  let reference db x =
    List.exists
      (fun y -> y <> x && Rdb.Database.mem db 0 (t [ x; y ]))
      (Prelude.Ints.range 0 30)
  in
  List.iter
    (fun (db, inputs) ->
      List.iter
        (fun x ->
          Alcotest.(check bool)
            (Printf.sprintf "%s x=%d" (Rdb.Database.name db) x)
            (reference db x)
            (Oracle_rm.decider machine ~fuel:5000 db (t [ x ])))
        inputs)
    [
      (Rdb.Instances.paper_b1 (), [ 0; 1 ]);
      (Rdb.Instances.less_than (), [ 0; 3; 7 ]);
      (Rdb.Instances.infinite_clique (), [ 0; 2 ]);
      (Rdb.Instances.triangles (), [ 0; 4 ]);
    ]

let test_exists_forward_edge_diverges () =
  (* On B2 = {(c, c)} the search never succeeds: fuel runs out, the
     paper's "Q(B2) undefined at (c)" behaviour. *)
  let db = Rdb.Instances.paper_b2 () in
  Alcotest.(check bool) "out of fuel" true
    (Oracle_rm.run Oracle_rm.exists_forward_edge ~db ~input:(t [ 2 ])
       ~fuel:2000
    = Oracle_rm.Out_of_fuel)

let test_oracle_machine_genericity_refutation () =
  (* The full §2 story: the honest oracle machine computes the ∃-query;
     the Proposition 2.5 construction refutes its genericity from its
     own oracle logs. *)
  let decide db u =
    Oracle_rm.decider Oracle_rm.exists_forward_edge ~fuel:2000 db u
  in
  let b1 = Rdb.Instances.paper_b1 () and b2 = Rdb.Instances.paper_b2 () in
  match Core.Genericity.refute ~decide ~b1 ~u:(t [ 0 ]) ~b2 ~v:(t [ 2 ]) with
  | None -> Alcotest.fail "expected a certificate"
  | Some cert ->
      Alcotest.(check bool) "verified" true (Core.Genericity.verify cert)

(* -------------------------------------------------------------------- *)
(* The non-closure witness (E4)                                         *)

let test_nonclosure_witness () =
  let w = Nonclosure.find () in
  Alcotest.(check bool) "witness verifies" true (Nonclosure.verify w)

let test_nonclosure_splits_class () =
  let w = Nonclosure.find () in
  let y1, z1 = w.Nonclosure.halting and y2, z2 = w.Nonclosure.looping in
  let db = Toy.halting_relation () in
  Alcotest.(check bool) "same class" true
    (Localiso.Liso.check_same db (t [ y1; z1 ]) (t [ y2; z2 ]));
  (* The projection distinguishes them. *)
  let in_projection (y, z) bound =
    List.exists
      (fun x -> Toy.halts_within ~x ~y ~z)
      [ bound ]
  in
  Alcotest.(check bool) "halting pair in projection" true
    (in_projection w.Nonclosure.halting w.Nonclosure.halt_steps);
  Alcotest.(check bool) "looping pair not in projection" false
    (in_projection w.Nonclosure.looping (2 * w.Nonclosure.halt_steps))

let () =
  Alcotest.run "rmachine"
    [
      ( "counter",
        [
          Alcotest.test_case "addition" `Quick test_addition;
          Alcotest.test_case "addition zero" `Quick test_addition_zero;
          Alcotest.test_case "busy loop" `Quick test_busy_loop;
          Alcotest.test_case "halt after" `Quick test_halt_after;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "toy",
        [
          Alcotest.test_case "encode/decode" `Quick
            test_encode_decode_roundtrip;
          Alcotest.test_case "decode total" `Quick test_decode_total;
          Alcotest.test_case "halting codes" `Quick test_halting_codes;
          Alcotest.test_case "halting relation db" `Quick
            test_halting_relation_db;
        ] );
      ( "oracle_rm",
        [
          Alcotest.test_case "member_of" `Quick test_member_of;
          Alcotest.test_case "oracle calls counted" `Quick
            test_oracle_calls_counted;
          Alcotest.test_case "exists forward edge" `Quick
            test_exists_forward_edge;
          Alcotest.test_case "divergence" `Quick
            test_exists_forward_edge_diverges;
          Alcotest.test_case "genericity refutation" `Quick
            test_oracle_machine_genericity_refutation;
        ] );
      ( "nonclosure",
        [
          Alcotest.test_case "witness verifies" `Quick test_nonclosure_witness;
          Alcotest.test_case "splits a class" `Quick
            test_nonclosure_splits_class;
        ] );
    ]
