open Rlogic
open Prelude

let t = Tuple.of_list
let check = Alcotest.check
let fmla = Alcotest.testable Ast.pp_formula ( = )
let qry = Alcotest.testable Ast.pp_query ( = )

(* -------------------------------------------------------------------- *)
(* Parser                                                               *)

let test_parse_atoms () =
  check fmla "equality" (Ast.Eq ("x", "y")) (Parser.formula "x = y");
  check fmla "inequality" (Ast.Not (Ast.Eq ("x", "y"))) (Parser.formula "x != y");
  check fmla "membership"
    (Ast.Mem (0, [| "x"; "y" |]))
    (Parser.formula "R1(x, y)");
  check fmla "nullary atom" (Ast.Mem (2, [||])) (Parser.formula "R3()");
  check fmla "true" Ast.True (Parser.formula "true");
  check fmla "false" Ast.False (Parser.formula "false")

let test_parse_precedence () =
  check fmla "and binds tighter than or"
    (Ast.Or (Ast.True, Ast.And (Ast.False, Ast.True)))
    (Parser.formula "true || false && true");
  check fmla "not binds tightest"
    (Ast.And (Ast.Not Ast.True, Ast.False))
    (Parser.formula "!true && false");
  check fmla "implies lowest, right assoc"
    (Ast.Implies (Ast.True, Ast.Implies (Ast.False, Ast.True)))
    (Parser.formula "true -> false -> true");
  check fmla "left assoc and"
    (Ast.And (Ast.And (Ast.True, Ast.False), Ast.True))
    (Parser.formula "true && false && true");
  check fmla "parens override"
    (Ast.And (Ast.True, Ast.Or (Ast.False, Ast.True)))
    (Parser.formula "true && (false || true)")

let test_parse_quantifiers () =
  check fmla "exists scope extends right"
    (Ast.Exists ("z", Ast.And (Ast.Eq ("z", "x"), Ast.True)))
    (Parser.formula "exists z. z = x && true");
  check fmla "nested quantifiers"
    (Ast.Forall ("a", Ast.Exists ("b", Ast.Mem (0, [| "a"; "b" |]))))
    (Parser.formula "forall a. exists b. R1(a, b)")

let test_parse_query () =
  check qry "undefined" Ast.Undefined (Parser.query "undefined");
  check qry "simple query"
    (Ast.Query { vars = [ "x"; "y" ]; body = Ast.Mem (0, [| "x"; "y" |]) })
    (Parser.query "{(x, y) | R1(x, y)}");
  check qry "rank 0 query"
    (Ast.Query { vars = []; body = Ast.Mem (0, [||]) })
    (Parser.query "{() | R1()}")

let test_parse_errors () =
  let fails s =
    match Parser.query s with
    | exception Parser.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing brace" true (fails "{(x) | true");
  Alcotest.(check bool) "lone ampersand" true (fails "{(x) | true & true}");
  Alcotest.(check bool) "unknown relation" true (fails "{(x) | FOO(x)}");
  Alcotest.(check bool) "trailing garbage" true (fails "undefined zzz");
  Alcotest.(check bool) "bad char" true (fails "{(x) | x # y}")

let test_rels_of_database () =
  let db = Rdb.Instances.trigonometry ~scale:10 in
  let rels = Parser.rels_of_database db in
  check (Alcotest.option Alcotest.int) "SIN resolves" (Some 0) (rels "SIN");
  check (Alcotest.option Alcotest.int) "COS resolves" (Some 1) (rels "COS");
  check (Alcotest.option Alcotest.int) "R2 fallback" (Some 1) (rels "R2");
  check (Alcotest.option Alcotest.int) "unknown" None (rels "TAN")

(* -------------------------------------------------------------------- *)
(* Ast utilities                                                        *)

let test_free_vars () =
  let f = Parser.formula "exists z. R1(x, z) && y = x" in
  check (Alcotest.list Alcotest.string) "free vars in order" [ "x"; "y" ]
    (Ast.free_vars f)

let test_quantifier_rank () =
  check Alcotest.int "qf" 0 (Ast.quantifier_rank (Parser.formula "x = y"));
  check Alcotest.int "nested" 2
    (Ast.quantifier_rank (Parser.formula "exists a. forall b. a = b"));
  check Alcotest.int "max of branches" 1
    (Ast.quantifier_rank (Parser.formula "(exists a. a = x) && y = x"))

let test_is_quantifier_free () =
  Alcotest.(check bool) "qf" true
    (Ast.is_quantifier_free (Parser.formula "x = y && R1(x, x)"));
  Alcotest.(check bool) "not qf" false
    (Ast.is_quantifier_free (Parser.formula "exists z. z = z"))

let test_conj_disj () =
  check fmla "conj empty" Ast.True (Ast.conj []);
  check fmla "disj empty" Ast.False (Ast.disj []);
  check fmla "conj singleton" (Ast.Eq ("x", "x")) (Ast.conj [ Ast.Eq ("x", "x") ])

let test_well_formed () =
  let db_type = [| 2; 1 |] in
  let wf s = Ast.well_formed ~db_type (Parser.query s) in
  Alcotest.(check bool) "good" true (wf "{(x, y) | R1(x, y) && R2(x)}");
  Alcotest.(check bool) "bad arity" false (wf "{(x) | R1(x)}");
  Alcotest.(check bool) "bad index" false (wf "{(x) | R3(x)}");
  Alcotest.(check bool) "unbound var" false (wf "{(x) | x = y}");
  Alcotest.(check bool) "quantified var ok" true (wf "{(x) | exists y. x = y}");
  Alcotest.(check bool) "undefined wf" true (Ast.well_formed ~db_type Ast.Undefined)

(* -------------------------------------------------------------------- *)
(* Printer / parser roundtrip                                           *)

let test_print_parse_examples () =
  List.iter
    (fun s ->
      let f = Parser.formula s in
      check fmla ("roundtrip " ^ s) f (Parser.formula (Ast.formula_to_string f)))
    [
      "x = y && y != z || R1(x, x)";
      "!(x = y) && !R1(x, y)";
      "exists z. forall w. R1(z, w) -> z = w";
      "true -> false -> true";
      "(true || false) && true";
      "R2(x) && R1(x, y) || !R2(y)";
    ]

(* Random formula generator over small var/rel vocabulary. *)
let gen_formula =
  let open QCheck2.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let atom =
    oneof
      [
        pure Ast.True;
        pure Ast.False;
        map2 (fun a b -> Ast.Eq (a, b)) var var;
        map2 (fun a b -> Ast.Mem (0, [| a; b |])) var var;
        map (fun a -> Ast.Mem (1, [| a |])) var;
      ]
  in
  let rec go n =
    if n = 0 then atom
    else
      oneof
        [
          atom;
          map (fun f -> Ast.Not f) (go (n - 1));
          map2 (fun f g -> Ast.And (f, g)) (go (n - 1)) (go (n - 1));
          map2 (fun f g -> Ast.Or (f, g)) (go (n - 1)) (go (n - 1));
          map2 (fun f g -> Ast.Implies (f, g)) (go (n - 1)) (go (n - 1));
          map2 (fun v f -> Ast.Exists (v, f)) var (go (n - 1));
          map2 (fun v f -> Ast.Forall (v, f)) var (go (n - 1));
        ]
  in
  go 4

let qcheck_tests =
  let open QCheck2 in
  Test_support.to_alcotest
    [
      Test.make ~count:300 ~name:"print/parse roundtrip" gen_formula (fun f ->
          Parser.formula (Ast.formula_to_string f) = f);
      Test.make ~count:300 ~name:"printed formula reparses with same size"
        gen_formula (fun f ->
          Ast.size (Parser.formula (Ast.formula_to_string f)) = Ast.size f);
    ]

(* -------------------------------------------------------------------- *)
(* Evaluation                                                           *)

let test_eval_multiplication () =
  let db = Rdb.Instances.multiplication () in
  let q = Parser.query "{(x, y, z) | R1(x, y, z) && x = y}" in
  (* squares *)
  check (Alcotest.option Alcotest.bool) "3*3=9" (Some true)
    (Qf_eval.mem db q (t [ 3; 3; 9 ]));
  check (Alcotest.option Alcotest.bool) "2*3=6 but x<>y" (Some false)
    (Qf_eval.mem db q (t [ 2; 3; 6 ]));
  check (Alcotest.option Alcotest.bool) "rank mismatch" (Some false)
    (Qf_eval.mem db q (t [ 3; 9 ]))

let test_eval_undefined () =
  let db = Rdb.Instances.multiplication () in
  check (Alcotest.option Alcotest.bool) "undefined" None
    (Qf_eval.mem db Ast.Undefined (t [ 1 ]))

let test_eval_upto () =
  let db = Rdb.Instances.divides () in
  let q = Parser.query "{(x) | R1(x, x)}" in
  (* x divides x for x > 0 *)
  check Test_support.tupleset_testable "divisors of self"
    (Tupleset.of_lists [ [ 1 ]; [ 2 ]; [ 3 ] ])
    (Qf_eval.eval_upto db q ~cutoff:4)

let test_eval_bounded_quantifiers () =
  let db = Rdb.Instances.divides () in
  (* x is prime-like below cutoff: has no divisor 2 <= d < x. Expressed
     via: exists y. R1(y, x) && y != 1 && y != x  — composite detector. *)
  let f = Parser.formula "exists y. R1(y, x) && y != one && y != x" in
  let composite x =
    Qf_eval.eval_bounded db ~cutoff:20 ~env:[ ("x", x); ("one", 1) ] f
  in
  Alcotest.(check bool) "4 composite" true (composite 4);
  Alcotest.(check bool) "5 prime" false (composite 5);
  Alcotest.(check bool) "12 composite" true (composite 12);
  Alcotest.(check bool) "13 prime" false (composite 13)

let test_eval_unbound_variable () =
  let db = Rdb.Instances.divides () in
  Alcotest.check_raises "unbound" (Qf_eval.Unbound_variable "zz") (fun () ->
      ignore (Qf_eval.eval_formula db ~env:[] (Parser.formula "zz = zz")))

let test_eval_quantifier_rejected () =
  let db = Rdb.Instances.divides () in
  Alcotest.check_raises "quantifier in L-"
    (Invalid_argument "Qf_eval.eval_formula: quantifier in L- formula")
    (fun () ->
      ignore
        (Qf_eval.eval_formula db ~env:[]
           (Parser.formula "exists z. z = z")))

let () =
  Alcotest.run "rlogic"
    [
      ( "parser",
        [
          Alcotest.test_case "atoms" `Quick test_parse_atoms;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "quantifiers" `Quick test_parse_quantifiers;
          Alcotest.test_case "queries" `Quick test_parse_query;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "db relation names" `Quick test_rels_of_database;
        ] );
      ( "ast",
        [
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "quantifier rank" `Quick test_quantifier_rank;
          Alcotest.test_case "is quantifier free" `Quick
            test_is_quantifier_free;
          Alcotest.test_case "conj/disj" `Quick test_conj_disj;
          Alcotest.test_case "well formed" `Quick test_well_formed;
        ] );
      ( "roundtrip",
        Alcotest.test_case "examples" `Quick test_print_parse_examples
        :: qcheck_tests );
      ( "eval",
        [
          Alcotest.test_case "multiplication" `Quick test_eval_multiplication;
          Alcotest.test_case "undefined" `Quick test_eval_undefined;
          Alcotest.test_case "eval upto" `Quick test_eval_upto;
          Alcotest.test_case "bounded quantifiers" `Quick
            test_eval_bounded_quantifiers;
          Alcotest.test_case "unbound variable" `Quick
            test_eval_unbound_variable;
          Alcotest.test_case "quantifier rejected" `Quick
            test_eval_quantifier_rejected;
        ] );
    ]
