open Prelude

let check = Alcotest.check

let tri = Hs.Hsinstances.triangles ()

(* A two-relation hs db: triangle edges plus "same triangle or equal";
   R2 is definable from R1, so the automorphism group (and hence the
   tree and equivalence) is that of the triangles instance. *)
let tri2 =
  let r1 = Rdb.Relation.make ~name:"E" ~arity:2 (fun u -> u.(0) <> u.(1) && u.(0) / 3 = u.(1) / 3) in
  let r2 = Rdb.Relation.make ~name:"SAME" ~arity:2 (fun u -> u.(0) / 3 = u.(1) / 3) in
  let db = Rdb.Database.make ~name:"triangles2" [| r1; r2 |] in
  Hs.Hsdb.make ~name:"triangles2" ~db
    ~children:(Hs.Hsdb.children tri)
    ~equiv:(Hs.Hsdb.equiv tri) ()

let run_ok spec inst =
  match Genmach.Gm.run spec inst ~fuel:200 with
  | Some result -> result
  | None -> Alcotest.fail "GM ran out of fuel"

let output_exn result ~reg =
  match Genmach.Gm.output result ~reg with
  | Some s -> s
  | None -> Alcotest.fail "GM did not end as a single empty-tape unit"

let test_tri2_valid () =
  match Hs.Hsdb.validate ~max_rank:2 ~window:6 tri2 with
  | [] -> ()
  | issues -> Alcotest.fail (String.concat "\n" issues)

let test_load_relation () =
  (* tri2's SAME relation has two representatives, so the load really
     spawns, and erasing the tapes really collapses. *)
  let out = Genmach.Gm_programs.output_reg tri2 in
  let result = run_ok (Genmach.Gm_programs.load_relation ~out ~rel:1) tri2 in
  check Test_support.tupleset_testable "output = C2" (Hs.Hsdb.reps tri2 1)
    (output_exn result ~reg:out);
  check Alcotest.int "peak units = |C2|"
    (Tupleset.cardinal (Hs.Hsdb.reps tri2 1))
    result.Genmach.Gm.peak_units;
  Alcotest.(check bool) "spawning happened" true (result.Genmach.Gm.peak_units > 1);
  Alcotest.(check bool) "collapses happened" true (result.Genmach.Gm.collapses > 0);
  check Alcotest.int "single final unit" 1 (List.length result.Genmach.Gm.units)

let test_union () =
  let out = Genmach.Gm_programs.output_reg tri2 in
  let result = run_ok (Genmach.Gm_programs.union ~out ~rel1:0 ~rel2:1) tri2 in
  check Test_support.tupleset_testable "C1 ∪ C2"
    (Tupleset.union (Hs.Hsdb.reps tri2 0) (Hs.Hsdb.reps tri2 1))
    (output_exn result ~reg:out)

let test_inter_by_equiv () =
  let out = Genmach.Gm_programs.output_reg tri2 in
  let result = run_ok (Genmach.Gm_programs.inter_by_equiv ~out ~rel1:0 ~rel2:1) tri2 in
  check Test_support.tupleset_testable "C1 ∩ C2 (by ≅)"
    (Tupleset.inter (Hs.Hsdb.reps tri2 0) (Hs.Hsdb.reps tri2 1))
    (output_exn result ~reg:out)

let test_up_matches_qlhs () =
  let out = Genmach.Gm_programs.output_reg tri in
  let result = run_ok (Genmach.Gm_programs.up ~out ~rel:0) tri in
  let via_qlhs = (Ql.Ql_hs.eval_term tri (Ql.Ql_ast.Up (Ql.Ql_ast.Rel 0))).Ql.Ql_hs.reps in
  check Test_support.tupleset_testable "GM up = QL_hs up" via_qlhs
    (output_exn result ~reg:out)

let test_gm_agrees_with_qlhs_union () =
  let out = Genmach.Gm_programs.output_reg tri2 in
  let gm_result = run_ok (Genmach.Gm_programs.union ~out ~rel1:0 ~rel2:1) tri2 in
  let ql_value =
    Ql.Ql_hs.eval_term tri2 (Ql.Ql_macros.union (Ql.Ql_ast.Rel 0) (Ql.Ql_ast.Rel 1))
  in
  check Test_support.tupleset_testable "GM = QL_hs on union"
    ql_value.Ql.Ql_hs.reps
    (output_exn gm_result ~reg:out)

let test_fuel_exhaustion () =
  (* A spec that never halts. *)
  let spec =
    { Genmach.Gm.nstores = 1; start = 0; delta = (fun v -> Genmach.Gm.Step ([], v.Genmach.Gm.state)) }
  in
  Alcotest.(check bool) "out of fuel" true (Genmach.Gm.run spec tri ~fuel:20 = None)

let test_genericity_of_outputs () =
  (* Every stored tuple is a tree path: GM_hs outputs are unions of
     classes. *)
  let out = Genmach.Gm_programs.output_reg tri in
  let result = run_ok (Genmach.Gm_programs.up ~out ~rel:0) tri in
  Tupleset.iter
    (fun p ->
      Alcotest.(check bool) "output is a path" true (Hs.Hsdb.is_path tri p))
    (output_exn result ~reg:out)

let test_load_all_protocol () =
  (* The full Theorem 5.1 loading protocol, on relations with 1, 2 and 3
     representatives. *)
  let full =
    (* triangles plus the full binary relation: its C has all three
       rank-2 representatives, so the protocol explores 3! tape orders. *)
    let r1 =
      Rdb.Relation.make ~name:"E" ~arity:2 (fun u ->
          u.(0) <> u.(1) && u.(0) / 3 = u.(1) / 3)
    in
    let r2 = Rdb.Relation.make ~name:"ALL" ~arity:2 (fun _ -> true) in
    Hs.Hsdb.make ~name:"triangles_full"
      ~db:(Rdb.Database.make [| r1; r2 |])
      ~children:(Hs.Hsdb.children tri)
      ~equiv:(Hs.Hsdb.equiv tri) ()
  in
  List.iter
    (fun (label, inst, rel) ->
      let out = Genmach.Gm_programs.output_reg inst in
      let probe = out + 1 in
      match
        Genmach.Gm.run
          (Genmach.Gm_programs.load_all ~out ~probe ~rel)
          inst ~fuel:5000
      with
      | None -> Alcotest.fail (label ^ ": out of fuel")
      | Some result -> begin
          match Genmach.Gm.output result ~reg:out with
          | None -> Alcotest.fail (label ^ ": no single-unit output")
          | Some got ->
              check Test_support.tupleset_testable label
                (Hs.Hsdb.reps inst rel) got
        end)
    [
      ("one rep", tri, 0);
      ("two reps", tri2, 1);
      ("three reps", full, 1);
    ]

let test_load_all_collapse_counts () =
  (* With k representatives the protocol explores every insertion
     order; spawning and collapse are both substantial. *)
  let out = Genmach.Gm_programs.output_reg tri2 in
  match
    Genmach.Gm.run
      (Genmach.Gm_programs.load_all ~out ~probe:(out + 1) ~rel:1)
      tri2 ~fuel:5000
  with
  | None -> Alcotest.fail "out of fuel"
  | Some result ->
      Alcotest.(check bool) "multiple units in flight" true
        (result.Genmach.Gm.peak_units >= 3);
      Alcotest.(check bool) "collapses happened" true
        (result.Genmach.Gm.collapses >= 3)

let test_complement_program () =
  (* GM_hs computes ¬Rel via probe-based negation; must agree with the
     QL_hs complement on both the one-relation and two-relation
     instances. *)
  List.iter
    (fun (inst, rel) ->
      let out = Genmach.Gm_programs.output_reg inst in
      let probe = out + 1 in
      let result =
        match
          Genmach.Gm.run
            (Genmach.Gm_programs.complement ~out ~probe ~rel)
            inst ~fuel:2000
        with
        | Some r -> r
        | None -> Alcotest.fail "complement ran out of fuel"
      in
      let expected =
        (Ql.Ql_hs.eval_term inst (Ql.Ql_ast.Comp (Ql.Ql_ast.Rel rel)))
          .Ql.Ql_hs.reps
      in
      match Genmach.Gm.output result ~reg:out with
      | Some got ->
          check Test_support.tupleset_testable
            (Printf.sprintf "%s rel %d" (Hs.Hsdb.name inst) rel)
            expected got
      | None -> Alcotest.fail "no single-unit output")
    [ (tri, 0); (tri2, 0); (tri2, 1); (Hs.Hsinstances.rado (), 0) ]

let test_load_all_rejects_same_registers () =
  Alcotest.check_raises "out = probe"
    (Invalid_argument "Gm_programs.load_all: out = probe") (fun () ->
      ignore (Genmach.Gm_programs.load_all ~out:1 ~probe:1 ~rel:0))

let test_empty_load_kills_unit () =
  (* Loading an empty relation spawns zero units: the machine vanishes
     (and the run ends with no units). *)
  let empty_inst = Hs.Hsinstances.empty_graph () in
  let out = Genmach.Gm_programs.output_reg empty_inst in
  let result = run_ok (Genmach.Gm_programs.load_relation ~out ~rel:0) empty_inst in
  check Alcotest.int "no units left" 0 (List.length result.Genmach.Gm.units);
  Alcotest.(check bool) "no single-unit output" true
    (Genmach.Gm.output result ~reg:out = None)

let () =
  Alcotest.run "gm"
    [
      ( "programs",
        [
          Alcotest.test_case "tri2 valid" `Quick test_tri2_valid;
          Alcotest.test_case "load relation" `Quick test_load_relation;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "intersection by equivalence" `Quick
            test_inter_by_equiv;
          Alcotest.test_case "up matches QL_hs" `Quick test_up_matches_qlhs;
          Alcotest.test_case "union matches QL_hs" `Quick
            test_gm_agrees_with_qlhs_union;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "outputs are class reps" `Quick
            test_genericity_of_outputs;
          Alcotest.test_case "empty load kills unit" `Quick
            test_empty_load_kills_unit;
          Alcotest.test_case "Thm 5.1 loading protocol" `Quick
            test_load_all_protocol;
          Alcotest.test_case "loading protocol spawn/collapse" `Quick
            test_load_all_collapse_counts;
          Alcotest.test_case "loading protocol validation" `Quick
            test_load_all_rejects_same_registers;
          Alcotest.test_case "complement via probe" `Quick
            test_complement_program;
        ] );
    ]
