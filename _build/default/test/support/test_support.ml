(* Shared generators and helpers for the test suites. *)

open Prelude

let tuple_testable =
  Alcotest.testable Tuple.pp Tuple.equal

let tupleset_testable =
  Alcotest.testable Tupleset.pp Tupleset.equal

(* QCheck generator: a random finite database of the given type whose
   relation contents mention elements < [universe]. *)
let finite_db_gen ?(universe = 4) ~db_type () =
  let open QCheck2.Gen in
  let tuple_gen arity = array_size (pure arity) (int_bound (universe - 1)) in
  let relation_gen arity =
    list_size (int_bound 6) (tuple_gen arity) >|= fun tuples ->
    Tupleset.of_list tuples
  in
  let rec rels = function
    | [] -> pure []
    | a :: rest ->
        relation_gen a >>= fun s ->
        rels rest >|= fun tail -> (a, s) :: tail
  in
  rels (Array.to_list db_type) >|= fun specs ->
  let rels =
    List.mapi
      (fun i (a, s) ->
        Rdb.Relation.of_tupleset ~name:(Printf.sprintf "R%d" (i + 1)) ~arity:a s)
      specs
  in
  Rdb.Database.make ~name:"random" (Array.of_list rels)

let tuple_gen ?(universe = 4) ~rank () =
  QCheck2.Gen.array_size (QCheck2.Gen.pure rank)
    (QCheck2.Gen.int_bound (universe - 1))

(* A random pair (db, tuple) of the given type and rank. *)
let pair_gen ?(universe = 4) ~db_type ~rank () =
  let open QCheck2.Gen in
  finite_db_gen ~universe ~db_type () >>= fun db ->
  tuple_gen ~universe ~rank () >|= fun u -> (db, u)

let qtest ?(count = 100) name gen prop =
  QCheck2.Test.make ~count ~name gen prop

(* Convert QCheck tests to alcotest cases. *)
let to_alcotest tests = List.map QCheck_alcotest.to_alcotest tests
