open Prelude
open Localiso

let t = Tuple.of_list
let check = Alcotest.check

(* -------------------------------------------------------------------- *)
(* Diagram                                                              *)

let test_diagram_of_pair_basic () =
  let b = Rdb.Instances.infinite_clique () in
  let d = Diagram.of_pair b (t [ 3; 7 ]) in
  check Alcotest.int "rank" 2 (Diagram.rank d);
  check Alcotest.int "blocks" 2 (Diagram.blocks d);
  Alcotest.(check bool) "edge 0-1" true (Diagram.atom d ~rel:0 [| 0; 1 |]);
  Alcotest.(check bool) "no loop" false (Diagram.atom d ~rel:0 [| 0; 0 |])

let test_diagram_repeated_elements () =
  let b = Rdb.Instances.infinite_clique () in
  let d = Diagram.of_pair b (t [ 5; 5; 5 ]) in
  check Alcotest.int "one block" 1 (Diagram.blocks d);
  Alcotest.(check bool) "no loop" false (Diagram.atom d ~rel:0 [| 0; 0 |])

let test_realize_roundtrip_manual () =
  let b = Rdb.Instances.paper_b1 () in
  let d = Diagram.of_pair b (t [ 0; 1 ]) in
  let b', u' = Diagram.realize d in
  check
    (Alcotest.testable Diagram.pp Diagram.equal)
    "of_pair . realize = id" d
    (Diagram.of_pair b' u')

let test_enumeration_example_68 () =
  (* §2's worked example: type a = (2,1) has 2² + 2⁴·2² = 68 classes of
     rank 2. *)
  let db_type = [| 2; 1 |] in
  check Alcotest.int "closed form" 68 (Diagram.count ~db_type ~rank:2);
  check Alcotest.int "enumeration" 68
    (List.length (Diagram.enumerate ~db_type ~rank:2 ()))

let test_enumeration_counts_other () =
  (* Rank 1, type (2): patterns = 1 block; 2^(1²)=2 diagrams... for type
     (2) rank 1 there are 2 classes: loop or no loop. *)
  check Alcotest.int "graph rank 1" 2 (Diagram.count ~db_type:[| 2 |] ~rank:1);
  (* Graph rank 2: 1-block: 2; 2-block: 2^4 = 16; total 18. *)
  check Alcotest.int "graph rank 2" 18 (Diagram.count ~db_type:[| 2 |] ~rank:2);
  (* Unary relation: rank n over type (1): sum over partitions of 2^blocks. *)
  check Alcotest.int "unary rank 2" (2 + 4) (Diagram.count ~db_type:[| 1 |] ~rank:2);
  (* Rank 0: the two classes: () in R or not, for type (0). *)
  check Alcotest.int "nullary relation rank 0" 2
    (Diagram.count ~db_type:[| 0 |] ~rank:0);
  List.iter
    (fun (db_type, rank) ->
      check Alcotest.int
        (Printf.sprintf "count=enumeration type=%s rank=%d"
           (String.concat ","
              (List.map string_of_int (Array.to_list db_type)))
           rank)
        (Diagram.count ~db_type ~rank)
        (List.length (Diagram.enumerate ~db_type ~rank ())))
    [ ([| 2 |], 0); ([| 2 |], 1); ([| 2 |], 2); ([| 1; 1 |], 2); ([| 3 |], 1) ]

let test_enumeration_no_duplicates () =
  let ds = Diagram.enumerate ~db_type:[| 2 |] ~rank:2 () in
  let distinct = List.sort_uniq Diagram.compare ds in
  check Alcotest.int "no duplicates" (List.length ds) (List.length distinct)

let test_enumeration_filter () =
  (* Irreflexive symmetric graph diagrams of rank 2:
     1 block: loop forbidden -> 1 diagram (no edges).
     2 blocks: no loops; (0,1) and (1,0) tied together -> 2 diagrams. *)
  let keep d =
    let m = Diagram.blocks d in
    let ok = ref true in
    for x = 0 to m - 1 do
      if Diagram.atom d ~rel:0 [| x; x |] then ok := false;
      for y = 0 to m - 1 do
        if Diagram.atom d ~rel:0 [| x; y |] <> Diagram.atom d ~rel:0 [| y; x |]
        then ok := false
      done
    done;
    !ok
  in
  check Alcotest.int "graph-shaped classes" 3
    (List.length (Diagram.enumerate ~keep ~db_type:[| 2 |] ~rank:2 ()))

(* -------------------------------------------------------------------- *)
(* Liso                                                                 *)

let test_paper_example_liso () =
  (* (R1, (a)) ≅ₗ (R2, (c)) from §2: both have a self-loop on the single
     element. *)
  let b1 = Rdb.Instances.paper_b1 () and b2 = Rdb.Instances.paper_b2 () in
  Alcotest.(check bool) "locally isomorphic" true
    (Liso.check b1 (t [ 0 ]) b2 (t [ 2 ]));
  (* But (R1,(a,b)) vs (R2,(c,c)): patterns differ. *)
  Alcotest.(check bool) "pattern mismatch" false
    (Liso.check b1 (t [ 0; 1 ]) b2 (t [ 2; 2 ]))

let test_liso_differs_from_global () =
  (* In the clique, (1,2) ≅ (3,4); locally isomorphic too. *)
  let b = Rdb.Instances.infinite_clique () in
  Alcotest.(check bool) "clique pairs" true
    (Liso.check_same b (t [ 1; 2 ]) (t [ 3; 4 ]));
  (* In less_than, (1,2) and (2,1) differ locally. *)
  let lt = Rdb.Instances.less_than () in
  Alcotest.(check bool) "order matters" false
    (Liso.check_same lt (t [ 1; 2 ]) (t [ 2; 1 ]));
  Alcotest.(check bool) "translation invariant locally" true
    (Liso.check_same lt (t [ 1; 2 ]) (t [ 5; 9 ]))

let test_liso_rank0 () =
  let b = Rdb.Instances.infinite_clique () in
  Alcotest.(check bool) "empty tuples always locally isomorphic" true
    (Liso.check_same b Tuple.empty Tuple.empty)

let test_oracle_cost () =
  check Alcotest.int "cost for (2,1) rank 2" (4 + 2)
    (Liso.oracle_cost ~db_type:[| 2; 1 |] ~rank:2);
  let b = Rdb.Instances.infinite_clique () in
  Rdb.Database.reset_oracle_calls b;
  ignore (Liso.check_same b (t [ 1; 2 ]) (t [ 3; 4 ]));
  check Alcotest.int "measured oracle calls" (2 * Liso.oracle_cost ~db_type:[| 2 |] ~rank:2)
    (Rdb.Database.oracle_calls b)

(* -------------------------------------------------------------------- *)
(* Classes                                                              *)

let test_classes_registry () =
  let reg = Classes.make ~db_type:[| 2; 1 |] ~rank:2 () in
  check Alcotest.int "68 classes" 68 (Classes.size reg);
  (* A type-(2,1) database: edges and a unary marker. *)
  let b =
    Rdb.Database.of_finite [ (2, [ [ 0; 0 ]; [ 0; 1 ] ]); (1, [ [ 1 ] ]) ]
  in
  let i = Classes.class_of reg b (t [ 0; 1 ]) in
  Alcotest.(check bool) "index in range" true (i >= 0 && i < 68);
  (* The realization of class i is in class i. *)
  let b', u' = Classes.realization reg i in
  check Alcotest.int "realization lands in its class" i
    (Classes.class_of reg b' u')

let test_class_of_respects_liso () =
  let reg = Classes.make ~db_type:[| 2 |] ~rank:2 () in
  let lt = Rdb.Instances.less_than () in
  check Alcotest.int "locally isomorphic pairs share a class"
    (Classes.class_of reg lt (t [ 1; 2 ]))
    (Classes.class_of reg lt (t [ 5; 9 ]))

(* -------------------------------------------------------------------- *)
(* Lgq                                                                  *)

let test_lgq_eval () =
  let reg = Classes.make ~db_type:[| 2 |] ~rank:1 () in
  (* Select the class "has a self loop". *)
  let q = Lgq.of_pred reg (fun d -> Diagram.atom d ~rel:0 [| 0; 0 |]) in
  let b1 = Rdb.Instances.paper_b1 () in
  check (Alcotest.option Alcotest.bool) "a has loop" (Some true)
    (Lgq.mem q b1 (t [ 0 ]));
  check (Alcotest.option Alcotest.bool) "b has no loop" (Some false)
    (Lgq.mem q b1 (t [ 1 ]));
  let members = Lgq.eval_upto q b1 ~cutoff:4 in
  check Test_support.tupleset_testable "loops below 4"
    (Tupleset.of_lists [ [ 0 ] ])
    members

let test_lgq_boolean_ops () =
  let reg = Classes.make ~db_type:[| 2 |] ~rank:1 () in
  let loop = Lgq.of_pred reg (fun d -> Diagram.atom d ~rel:0 [| 0; 0 |]) in
  let all = Lgq.full reg in
  Alcotest.(check bool) "union with complement is full" true
    (Lgq.equal all (Lgq.union loop (Lgq.complement loop)));
  Alcotest.(check bool) "intersection with complement is empty" true
    (Lgq.equal (Lgq.empty reg) (Lgq.inter loop (Lgq.complement loop)));
  Alcotest.(check bool) "undefined absorbs" true
    (Lgq.union Lgq.undefined loop = Lgq.undefined)

let test_lgq_undefined () =
  let b = Rdb.Instances.infinite_clique () in
  check (Alcotest.option Alcotest.bool) "undefined query" None
    (Lgq.mem Lgq.undefined b (t [ 0 ]));
  Alcotest.(check bool) "empty output" true
    (Tupleset.is_empty (Lgq.eval_upto Lgq.undefined b ~cutoff:5))

(* -------------------------------------------------------------------- *)
(* Properties                                                           *)

(* Proposition 2.3: locally generic queries are all-or-nothing defined,
   constant on classes, and of a single output rank. *)
let test_prop_23_properties () =
  let reg = Classes.make ~db_type:[| 2 |] ~rank:2 () in
  let q = Lgq.of_pred reg (fun d -> Diagram.atom d ~rel:0 [| 0; 0 |]) in
  let b1 = Rdb.Instances.less_than () and b2 = Rdb.Instances.triangles () in
  (* Part 1: defined everywhere (our representation makes this
     structural: a Classes query answers on every database). *)
  Alcotest.(check bool) "defined on b1" true (Lgq.mem q b1 (t [ 0; 1 ]) <> None);
  Alcotest.(check bool) "defined on b2" true (Lgq.mem q b2 (t [ 0; 1 ]) <> None);
  (* Part 2: constant on ≅ₗ classes across databases. *)
  List.iter
    (fun (u, v) ->
      if Liso.check b1 u b2 v then
        check (Alcotest.option Alcotest.bool)
          (Printf.sprintf "%s/%s agree" (Tuple.to_string u) (Tuple.to_string v))
          (Lgq.mem q b1 u) (Lgq.mem q b2 v))
    [ (t [ 1; 2 ], t [ 0; 1 ]); (t [ 2; 2 ], t [ 4; 4 ]); (t [ 2; 1 ], t [ 1; 0 ]) ];
  (* Part 3: a common output rank — tuples of other ranks are excluded. *)
  check (Alcotest.option Alcotest.bool) "wrong rank" (Some false)
    (Lgq.mem q b1 (t [ 1 ]))

let qcheck_tests =
  let open QCheck2 in
  let db_type = [| 2; 1 |] in
  let pair2 = Test_support.pair_gen ~db_type ~rank:2 () in
  Test_support.to_alcotest
    [
      Test.make ~count:100 ~name:"check agrees with brute force"
        Gen.(pair pair2 pair2)
        (fun ((b1, u), (b2, v)) ->
          Liso.check b1 u b2 v = Liso.check_bruteforce b1 u b2 v);
      Test.make ~count:100 ~name:"liso reflexive" pair2 (fun (b, u) ->
          Liso.check_same b u u);
      Test.make ~count:100 ~name:"liso symmetric"
        Gen.(pair pair2 pair2)
        (fun ((b1, u), (b2, v)) ->
          Liso.check b1 u b2 v = Liso.check b2 v b1 u);
      Test.make ~count:100 ~name:"diagram equality iff liso"
        Gen.(pair pair2 pair2)
        (fun ((b1, u), (b2, v)) ->
          Diagram.equal (Diagram.of_pair b1 u) (Diagram.of_pair b2 v)
          = Liso.check b1 u b2 v);
      Test.make ~count:60 ~name:"realize roundtrip" pair2 (fun (b, u) ->
          let d = Diagram.of_pair b u in
          let b', u' = Diagram.realize d in
          Diagram.equal d (Diagram.of_pair b' u'));
    ]

let () =
  Alcotest.run "localiso"
    [
      ( "diagram",
        [
          Alcotest.test_case "of_pair basic" `Quick test_diagram_of_pair_basic;
          Alcotest.test_case "repeated elements" `Quick
            test_diagram_repeated_elements;
          Alcotest.test_case "realize roundtrip" `Quick
            test_realize_roundtrip_manual;
          Alcotest.test_case "the 68 classes of §2" `Quick
            test_enumeration_example_68;
          Alcotest.test_case "other counts" `Quick test_enumeration_counts_other;
          Alcotest.test_case "no duplicates" `Quick
            test_enumeration_no_duplicates;
          Alcotest.test_case "filtered enumeration" `Quick
            test_enumeration_filter;
        ] );
      ( "liso",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example_liso;
          Alcotest.test_case "local vs global" `Quick
            test_liso_differs_from_global;
          Alcotest.test_case "rank 0" `Quick test_liso_rank0;
          Alcotest.test_case "oracle cost" `Quick test_oracle_cost;
        ] );
      ( "classes",
        [
          Alcotest.test_case "registry" `Quick test_classes_registry;
          Alcotest.test_case "respects liso" `Quick test_class_of_respects_liso;
        ] );
      ( "lgq",
        [
          Alcotest.test_case "eval" `Quick test_lgq_eval;
          Alcotest.test_case "Prop 2.3 properties" `Quick
            test_prop_23_properties;
          Alcotest.test_case "boolean ops" `Quick test_lgq_boolean_ops;
          Alcotest.test_case "undefined" `Quick test_lgq_undefined;
        ] );
      ("properties", qcheck_tests);
    ]
