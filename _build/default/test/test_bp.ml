open Prelude

let check = Alcotest.check
let t = Tuple.of_list

(* Small graph zoo for the gadget. *)
let triangle = { Bptheory.Gadget.vertices = [ 0; 1; 2 ]; edges = [ (0, 1); (1, 2); (0, 2) ] }
let path3 = { Bptheory.Gadget.vertices = [ 0; 1; 2 ]; edges = [ (0, 1); (1, 2) ] }
let path3b = { Bptheory.Gadget.vertices = [ 7; 8; 9 ]; edges = [ (8, 7); (8, 9) ] }
let square = { Bptheory.Gadget.vertices = [ 0; 1; 2; 3 ]; edges = [ (0, 1); (1, 2); (2, 3); (3, 0) ] }
let star4 = { Bptheory.Gadget.vertices = [ 0; 1; 2; 3 ]; edges = [ (0, 1); (0, 2); (0, 3) ] }

(* -------------------------------------------------------------------- *)
(* Theorem 6.1 gadget                                                   *)

let test_graph_iso_checker () =
  Alcotest.(check bool) "path ≅ relabelled path" true
    (Bptheory.Gadget.graphs_isomorphic path3 path3b);
  Alcotest.(check bool) "triangle ≇ path" false
    (Bptheory.Gadget.graphs_isomorphic triangle path3);
  Alcotest.(check bool) "square ≇ star" false
    (Bptheory.Gadget.graphs_isomorphic square star4);
  Alcotest.(check bool) "different sizes" false
    (Bptheory.Gadget.graphs_isomorphic triangle square)

let test_gadget_structure () =
  let g = Bptheory.Gadget.build ~g1:triangle ~g2:path3 in
  (* a is the only R1 element. *)
  Alcotest.(check bool) "a in R1" true
    (Rdb.Database.mem g.Bptheory.Gadget.db 0 (t [ g.Bptheory.Gadget.a ]));
  Alcotest.(check bool) "b not in R1" false
    (Rdb.Database.mem g.Bptheory.Gadget.db 0 (t [ g.Bptheory.Gadget.b ]));
  (* a-b and a-c edges; b adjacent to all of G1. *)
  Alcotest.(check bool) "a-b" true
    (Rdb.Database.mem g.Bptheory.Gadget.db 1 (t [ g.Bptheory.Gadget.a; g.Bptheory.Gadget.b ]));
  Alcotest.(check bool) "a-c" true
    (Rdb.Database.mem g.Bptheory.Gadget.db 1 (t [ g.Bptheory.Gadget.c; g.Bptheory.Gadget.a ]));
  List.iter
    (fun v ->
      Alcotest.(check bool) "b adjacent to G1" true
        (Rdb.Database.mem g.Bptheory.Gadget.db 1 (t [ g.Bptheory.Gadget.b; v ])))
    g.Bptheory.Gadget.g1_vertices;
  Alcotest.(check bool) "b not adjacent to G2" false
    (Rdb.Database.mem g.Bptheory.Gadget.db 1
       (t [ g.Bptheory.Gadget.b; List.hd g.Bptheory.Gadget.g2_vertices ]))

let test_gadget_equivalence_tracks_isomorphism () =
  List.iter
    (fun (g1, g2) ->
      let gadget = Bptheory.Gadget.build ~g1 ~g2 in
      Alcotest.(check bool) "b ≅ c iff G1 ≅ G2"
        (Bptheory.Gadget.graphs_isomorphic g1 g2)
        (Bptheory.Gadget.b_equiv_c gadget))
    [
      (triangle, triangle);
      (triangle, path3);
      (path3, path3b);
      (square, star4);
      (square, square);
      (triangle, square);
    ]

let test_separating_relation () =
  (* Non-isomorphic graphs: {b} preserves the automorphisms. *)
  let g = Bptheory.Gadget.build ~g1:triangle ~g2:path3 in
  Alcotest.(check bool) "{b} preserves automorphisms" true
    (Bptheory.Gadget.preserves_automorphisms g (Bptheory.Gadget.separating_relation g));
  (* Isomorphic graphs: some automorphism swaps b and c, so {b} does
     not preserve them. *)
  let g' = Bptheory.Gadget.build ~g1:path3 ~g2:path3b in
  Alcotest.(check bool) "{b} breaks automorphisms" false
    (Bptheory.Gadget.preserves_automorphisms g' (Bptheory.Gadget.separating_relation g'))

(* -------------------------------------------------------------------- *)
(* Theorem 6.2: unary BP synthesis                                      *)

let test_express_unary () =
  (* B = (EVEN): unary db of even numbers; R = "pairs of equal parity
     elements with both even", an automorphism-preserving rank-2
     relation. *)
  let even =
    Rdb.Database.make ~name:"even"
      [| Rdb.Relation.make ~name:"EVEN" ~arity:1 (fun u -> u.(0) mod 2 = 0) |]
  in
  let pred u = u.(0) mod 2 = 0 && u.(1) mod 2 = 0 in
  let q = Bptheory.Bp.express_unary even ~rank:2 ~window:6 pred in
  Alcotest.(check bool) "quantifier free" true
    (match q with
    | Rlogic.Ast.Query { body; _ } -> Rlogic.Ast.is_quantifier_free body
    | Rlogic.Ast.Undefined -> false);
  (* The synthesized L⁻ formula computes the relation everywhere. *)
  Combinat.fold_cartesian
    (fun () u ->
      check (Alcotest.option Alcotest.bool)
        (Tuple.to_string u)
        (Some (pred u))
        (Rlogic.Qf_eval.mem even q (Array.copy u)))
    () ~width:2 ~bound:9

let test_express_unary_rejects_binary () =
  let db = Rdb.Instances.infinite_clique () in
  Alcotest.check_raises "not unary"
    (Invalid_argument "Bp.express_unary: database is not unary") (fun () ->
      ignore (Bptheory.Bp.express_unary db ~rank:1 ~window:4 (fun _ -> true)))

(* -------------------------------------------------------------------- *)
(* Theorem 6.3: hs BP synthesis                                         *)

let test_express_hs_on_triangles () =
  let tri = Hs.Hsinstances.triangles () in
  (* R = "distinct and adjacent" — a union of ≅_B-classes. *)
  let pred u = u.(0) <> u.(1) && Rdb.Database.mem (Hs.Hsdb.db tri) 0 u in
  Alcotest.(check bool) "pred preserves automorphisms" true
    (Bptheory.Bp.preserves_automorphisms_hs tri ~rank:2 ~window:7 pred);
  let q = Bptheory.Bp.express_hs tri ~rank:2 pred in
  (* Evaluate the synthesized first-order expression via the tree. *)
  Combinat.fold_cartesian
    (fun () u ->
      check (Alcotest.option Alcotest.bool)
        (Tuple.to_string u)
        (Some (pred u))
        (Hs.Fo_eval.mem tri q (Array.copy u)))
    () ~width:2 ~bound:7

let test_express_hs_nontrivial_r0 () =
  (* On path-of-3 copies some classes share diagrams (r0 = 2), so the
     synthesis genuinely needs quantified Hintikka formulas. *)
  let p3 =
    Hs.Hsinstances.disjoint_copies
      [ Hs.Hsinstances.undirected_path_component 3 ]
  in
  (* R = "x is a middle vertex" (degree 2). *)
  let pred u = u.(0) mod 3 = 1 in
  Alcotest.(check bool) "pred preserves automorphisms" true
    (Bptheory.Bp.preserves_automorphisms_hs p3 ~rank:1 ~window:9 pred);
  let q = Bptheory.Bp.express_hs p3 ~rank:1 pred in
  (match q with
  | Rlogic.Ast.Query { body; _ } ->
      Alcotest.(check bool) "uses quantifiers" false
        (Rlogic.Ast.is_quantifier_free body)
  | Rlogic.Ast.Undefined -> Alcotest.fail "undefined");
  Combinat.fold_cartesian
    (fun () u ->
      check (Alcotest.option Alcotest.bool)
        (Tuple.to_string u)
        (Some (pred u))
        (Hs.Fo_eval.mem p3 q (Array.copy u)))
    () ~width:1 ~bound:9

let test_preserves_detector () =
  let tri = Hs.Hsinstances.triangles () in
  (* "x < 3" is not automorphism-preserving. *)
  Alcotest.(check bool) "non-generic relation rejected" false
    (Bptheory.Bp.preserves_automorphisms_hs tri ~rank:1 ~window:7 (fun u -> u.(0) < 3))

let () =
  Alcotest.run "bp"
    [
      ( "gadget",
        [
          Alcotest.test_case "graph iso checker" `Quick test_graph_iso_checker;
          Alcotest.test_case "structure" `Quick test_gadget_structure;
          Alcotest.test_case "b ≅ c iff G1 ≅ G2 (Thm 6.1)" `Quick
            test_gadget_equivalence_tracks_isomorphism;
          Alcotest.test_case "separating relation" `Quick
            test_separating_relation;
        ] );
      ( "unary",
        [
          Alcotest.test_case "express (Thm 6.2)" `Quick test_express_unary;
          Alcotest.test_case "rejects binary" `Quick
            test_express_unary_rejects_binary;
        ] );
      ( "hs",
        [
          Alcotest.test_case "express on triangles (Thm 6.3)" `Quick
            test_express_hs_on_triangles;
          Alcotest.test_case "express with nontrivial r0" `Quick
            test_express_hs_nontrivial_r0;
          Alcotest.test_case "preservation detector" `Quick
            test_preserves_detector;
        ] );
    ]
